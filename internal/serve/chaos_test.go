package serve_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/figures"
	"repro/internal/loadgen"
	"repro/internal/netfault"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// chaos_test.go is the headline robustness property (DESIGN.md §14):
// random network-fault schedules — lost acks, duplicated sends, dial
// errors, connection resets, slow conns — composed with mid-run crashes
// and resume, driven by the real retrying load generator, must converge
// to the exact batch-reference digest, with the dedupe telemetry
// accounting for every duplicate the fault layer manufactured.

// chaosAccounts is the duplicate ledger, fed by a netfault Transport
// Observer: it sees every /v1/events exchange the server fully processed,
// including deliveries whose acks the fault layer then dropped — exactly
// the traffic the client itself cannot see. Batches are keyed by payload
// hash, so deliveries beyond a batch's first successful one are the
// manufactured duplicates the server's dedupe must have rejected.
type chaosAccounts struct {
	mu         sync.Mutex
	accepted   int
	duplicates int
	deliveries map[[sha256.Size]byte]int
	sizes      map[[sha256.Size]byte]int
}

func newChaosAccounts() *chaosAccounts {
	return &chaosAccounts{
		deliveries: make(map[[sha256.Size]byte]int),
		sizes:      make(map[[sha256.Size]byte]int),
	}
}

func (a *chaosAccounts) observe(req *http.Request, status int, body []byte, dropped bool) {
	// Only successful ingest exchanges admit events; recovery 503s and
	// poll GETs contribute nothing to the admission books.
	if req.Method != http.MethodPost || req.URL.Path != "/v1/events" || status != http.StatusOK {
		return
	}
	var ir serve.IngestResponse
	if json.Unmarshal(body, &ir) != nil {
		return
	}
	var payload []byte
	if req.GetBody != nil {
		if rc, err := req.GetBody(); err == nil {
			payload, _ = io.ReadAll(rc)
			rc.Close()
		}
	}
	size := 0
	var batch serve.IngestRequest
	if json.Unmarshal(payload, &batch) == nil {
		size = len(batch.Events)
	}
	key := sha256.Sum256(payload)
	a.mu.Lock()
	a.accepted += ir.Accepted
	a.duplicates += ir.Duplicates
	a.deliveries[key]++
	a.sizes[key] = size
	a.mu.Unlock()
}

// books returns the observer's totals: events admitted, dedupe rejections
// reported on the wire, and the duplicates the fault layer manufactured
// (every successful delivery of a batch beyond its first redelivers the
// whole already-admitted batch).
func (a *chaosAccounts) books() (accepted, duplicates, manufactured int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for key, n := range a.deliveries {
		if n > 1 {
			manufactured += (n - 1) * a.sizes[key]
		}
	}
	return a.accepted, a.duplicates, manufactured
}

// chaosClient wraps a test server's client transport in a fault layer.
func chaosClient(hs *httptest.Server, spec netfault.Spec, obs netfault.Observer) (*http.Client, *netfault.Transport) {
	tr := netfault.NewTransport(hs.Client().Transport, spec)
	tr.Observer = obs
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}, tr
}

// TestNetChaosConvergence runs the cookie-monster trace through the full
// serving stack under seeded random fault schedules and checks the run
// converges to the batch reference bit for bit. Seeds rotate through
// three regimes:
//
//   - client: transport faults only (lost acks, duplicate sends, dial
//     errors, latency). The clean server lets the observer's ledger hold
//     exactly: every admission and every manufactured duplicate accounted.
//   - server: client faults plus a fault-armed listener (connection
//     resets, slow-loris conns). Server-side resets redeliver invisibly
//     to the client-side observer, so the regime checks conservation —
//     every event admitted exactly once — and the digest.
//   - crash: client faults plus a seeded mid-run crash at the WAL fault
//     point, then resume and a full-trace replay under a fresh fault
//     schedule. Dedupe sorts out what was durable; the stitched run must
//     still match the reference.
func TestNetChaosConvergence(t *testing.T) {
	ref, err := figures.BatchRef("cookie-monster")
	if err != nil {
		t.Fatalf("batch reference: %v", err)
	}
	want := ref.CanonicalDigest()
	w, err := figures.ByName("cookie-monster")
	if err != nil {
		t.Fatal(err)
	}

	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	regimes := [...]string{"client", "server", "crash"}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed-%02d-%s", seed, regimes[seed%3]), func(t *testing.T) {
			cfg, err := w.Config()
			if err != nil {
				t.Fatal(err)
			}
			ds := cfg.Dataset
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 1))
			cspec := netfault.Spec{
				Seed:          uint64(seed)*0x9e3779b97f4a7c15 + 0xa5,
				DialError:     0.02 + 0.06*rng.Float64(),
				ResponseDrop:  0.03 + 0.07*rng.Float64(),
				DuplicateSend: 0.03 + 0.07*rng.Float64(),
				SendLatency:   0.25 * rng.Float64(),
				MaxLatency:    time.Millisecond,
			}
			switch seed % 3 {
			case 0:
				runClientFaultSeed(t, want, scenarioForServing(cfg), ds, cspec)
			case 1:
				sspec := netfault.Spec{
					Seed:      uint64(seed)*0x517cc1b727220a95 + 0xb7,
					ConnReset: 0.04 + 0.10*rng.Float64(),
					SlowConn:  0.06 * rng.Float64(),
				}
				runServerFaultSeed(t, want, scenarioForServing(cfg), ds, cspec, sspec)
			case 2:
				countdown := int64(400 + (seed*431)%3000)
				runCrashResumeSeed(t, want, scenarioForServing(cfg), ds, cspec, countdown)
			}
		})
	}
}

// runClientFaultSeed is the exact-accounting regime: a clean server, a
// faulty transport, and a ledger that must balance to the event.
func runClientFaultSeed(t *testing.T, want string, scenario workload.Config, ds *dataset.Dataset, cspec netfault.Spec) {
	meta := ds.Meta()
	meta.Advertisers = nil // loadgen registers them
	ts := newTestServer(t, serve.Config{Scenario: scenario, Meta: meta})

	acct := newChaosAccounts()
	client, tr := chaosClient(ts.http, cspec, acct.observe)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target: ts.http.URL, Dataset: ds, Senders: 1, BatchSize: 128,
		Client: client, Seed: cspec.Seed,
	})
	if err != nil {
		t.Fatalf("loadgen under client faults: %v (transport %+v)", err, tr.Stats())
	}
	n := len(ds.Events)
	// Client books: acks lost to the fault layer surface as duplicates on
	// the retry, so accepted + duplicates covers the trace exactly.
	if rep.EventsAccepted+rep.Duplicates != n {
		t.Fatalf("client accounted %d accepted + %d duplicates, want %d events",
			rep.EventsAccepted, rep.Duplicates, n)
	}
	if rep.GiveUps != 0 {
		t.Fatalf("give-ups under bounded faults: %v", rep.GiveUpsBySender)
	}

	run, serr := tsShutdown(ts)
	if got := mustDigest(t, run, serr, "client-fault run"); got != want {
		t.Fatalf("chaos digest %s != batch reference %s (faults %+v)", got, want, tr.Stats())
	}

	// Observer books: every admission seen, every server-side dedupe
	// rejection attributable to a delivery the fault layer manufactured.
	accepted, duplicates, manufactured := acct.books()
	st := ts.srv.StatsSnapshot()
	if accepted != n || st.EventsAccepted != int64(n) {
		t.Fatalf("observer saw %d admissions, server counted %d, want %d",
			accepted, st.EventsAccepted, n)
	}
	if int64(duplicates) != st.DuplicatesRejected {
		t.Fatalf("observer saw %d dedupe rejections, server counted %d",
			duplicates, st.DuplicatesRejected)
	}
	if duplicates != manufactured {
		t.Fatalf("server rejected %d duplicate events but the fault layer manufactured %d — unaccounted duplicates",
			duplicates, manufactured)
	}
}

// runServerFaultSeed adds a fault-armed listener: conn resets can eat a
// response after admission without the transport ever seeing the
// exchange, so the property here is conservation and bit-equality.
func runServerFaultSeed(t *testing.T, want string, scenario workload.Config, ds *dataset.Dataset, cspec, sspec netfault.Spec) {
	meta := ds.Meta()
	meta.Advertisers = nil
	srv, err := serve.NewServer(serve.Config{Scenario: scenario, Meta: meta})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewUnstartedServer(srv.Handler())
	hs.Listener = netfault.WrapListener(hs.Listener, sspec)
	hs.Start()
	t.Cleanup(hs.Close)
	ts := &testServer{srv: srv, http: hs}

	client, tr := chaosClient(hs, cspec, nil)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target: hs.URL, Dataset: ds, Senders: 1, BatchSize: 128,
		Client: client, Seed: cspec.Seed,
	})
	if err != nil {
		t.Fatalf("loadgen under wire faults: %v (transport %+v)", err, tr.Stats())
	}
	n := len(ds.Events)
	if rep.EventsAccepted+rep.Duplicates != n {
		t.Fatalf("client accounted %d accepted + %d duplicates, want %d events",
			rep.EventsAccepted, rep.Duplicates, n)
	}
	if st := ts.srv.StatsSnapshot(); st.EventsAccepted != int64(n) {
		t.Fatalf("server admitted %d events, want %d — conservation broken", st.EventsAccepted, n)
	}
	run, serr := tsShutdown(ts)
	if got := mustDigest(t, run, serr, "wire-fault run"); got != want {
		t.Fatalf("chaos digest %s != batch reference %s (faults %+v)", got, want, tr.Stats())
	}
}

// runCrashResumeSeed crashes the service at a seeded WAL fault point
// while a faulty client is mid-trace, resumes from the checkpoint, and
// replays the entire trace: what was durable dedupes, what was lost
// re-admits, and the stitched run must match the reference.
func runCrashResumeSeed(t *testing.T, want string, scenario workload.Config, ds *dataset.Dataset, cspec netfault.Spec, countdown int64) {
	scenario.CheckpointDir = t.TempDir()
	scenario.SnapshotEveryDays = 3
	scenario.GroupCommitEvents = 4

	var left atomic.Int64
	left.Store(countdown)
	boom := errors.New("injected crash")
	crashing := scenario
	crashing.FaultHook = func(p stream.FaultPoint) error {
		if p == stream.PointEventIngested && left.Add(-1) == 0 {
			return boom
		}
		return nil
	}

	metaA := ds.Meta()
	metaA.Advertisers = nil
	tsA := newTestServer(t, serve.Config{Scenario: crashing, Meta: metaA})
	clientA, _ := chaosClient(tsA.http, cspec, nil)

	// The crash kills the service with the client mid-trace. A watcher
	// cancels the load run the moment the served run dies, so the client
	// fails fast instead of grinding its retry budget against a corpse.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-tsA.srv.Done():
			cancel()
		case <-ctx.Done():
		}
	}()
	_, lerr := loadgen.Run(ctx, loadgen.Config{
		Target: tsA.http.URL, Dataset: ds, Senders: 1, BatchSize: 128,
		Client: clientA, Seed: cspec.Seed, RequestTimeout: 2 * time.Second,
	})
	cancel()
	if lerr == nil {
		t.Fatalf("crash at countdown %d never surfaced to the client", countdown)
	}
	if _, rerr := waitDone(t, tsA.srv); rerr == nil {
		t.Fatalf("crashed run reported no error")
	}

	// Recovery: resume and replay the ENTIRE trace under a fresh fault
	// schedule. The client does not know which suffix was lost, and does
	// not need to — admission dedupe sorts it out.
	resumed := scenario
	resumed.Resume = true
	tsB := newTestServer(t, serve.Config{Scenario: resumed, Meta: ds.Meta()})
	respec := cspec
	respec.Seed = cspec.Seed ^ 0xd6e8feb86659fd93
	clientB, trB := chaosClient(tsB.http, respec, nil)
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target: tsB.http.URL, Dataset: ds, Senders: 1, BatchSize: 128,
		Client: clientB, Seed: respec.Seed,
	})
	if err != nil {
		t.Fatalf("replay after resume: %v (transport %+v)", err, trB.Stats())
	}
	n := len(ds.Events)
	if rep.EventsAccepted+rep.Duplicates != n {
		t.Fatalf("replay accounted %d accepted + %d duplicates, want %d events",
			rep.EventsAccepted, rep.Duplicates, n)
	}
	if rep.Duplicates == 0 {
		t.Fatalf("full replay after a crash saw no duplicate rejections; dedupe is not engaged")
	}
	run, serr := tsShutdown(tsB)
	if got := mustDigest(t, run, serr, "crash-resume run"); got != want {
		t.Fatalf("crash-resume digest %s != batch reference %s (crash at %d, faults %+v)",
			got, want, countdown, trB.Stats())
	}
}

// TestResponseDropRetryDeduped pins the single most important regression:
// the server fully applies a batch, the acknowledgement is lost on the
// wire, and the client's verbatim retry must come back 100% duplicates —
// applied once, acked once.
func TestResponseDropRetryDeduped(t *testing.T) {
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     meta,
	})
	tr := netfault.NewTransport(ts.http.Client().Transport, netfault.Spec{
		Seed: 7, ResponseDrop: 1, MaxFaults: 1,
	})
	hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	evs := make([]serve.EventWire, 16)
	for i := range evs {
		evs[i] = serve.WireFromEvent(shedEvent(i))
	}
	body, _ := json.Marshal(serve.IngestRequest{Events: evs})

	// First delivery: the server applies the whole batch, then the ack is
	// lost. The client sees only an injected transport error.
	_, err := hc.Post(ts.http.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if !errors.Is(err, netfault.ErrInjected) {
		t.Fatalf("want injected ack loss, got %v", err)
	}

	// Verbatim retry: the fault budget is spent, so this delivery lands —
	// and every event must be a dedupe rejection, not a double ingest.
	resp, err := hc.Post(ts.http.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d: %s", resp.StatusCode, raw)
	}
	var ir serve.IngestResponse
	if err := json.Unmarshal(raw, &ir); err != nil {
		t.Fatalf("parsing retry response: %v", err)
	}
	if ir.Accepted != 0 || ir.Duplicates != len(evs) {
		t.Fatalf("retry accepted %d / duplicates %d, want 0/%d", ir.Accepted, ir.Duplicates, len(evs))
	}
	st := ts.srv.StatsSnapshot()
	if st.EventsAccepted != int64(len(evs)) || st.DuplicatesRejected != int64(len(evs)) {
		t.Fatalf("server books: accepted %d dup %d, want %d/%d",
			st.EventsAccepted, st.DuplicatesRejected, len(evs), len(evs))
	}
	if fs := tr.Stats(); fs.ResponseDrops != 1 || fs.Delivered != 2 {
		t.Fatalf("transport books: %+v, want 1 drop over 2 deliveries", fs)
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
