// Package serve is the measurement service's network front door
// (DESIGN.md §13): an HTTP/JSON API where devices POST impression and
// conversion events and queriers register queries and poll per-day
// results, backed by stream.Service through the ordinary workload client.
//
// The serving contract, in one paragraph: a 200 on POST /v1/events means
// every event in the batch is either admitted — appended to the
// write-ahead log (when durability is on) and applied to the service
// state — or recognized as a duplicate of an admission that is itself
// durable by the time the response is sent (a duplicate of an event still
// sitting in the ingest queue waits for that event to apply, so a retry
// racing its original can never be acknowledged ahead of it); a 429 means
// the bounded admission queue pushed back and the whole batch can be
// retried verbatim (the admitted prefix deduplicates); a 400 carries a
// typed RequestError and admits nothing. Admission order is what the WAL
// records, so a server-fed run is bit-identical to the in-process run
// over the same event sequence — the loopback equivalence test holds it
// to the digest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/stream"
	"repro/internal/workload"
)

// Config parameterizes one Server.
type Config struct {
	// Scenario is the workload configuration the served run executes.
	// Scenario.Dataset must be nil (the trace arrives over the network);
	// the late policy is forced to drop-with-counter — hostile traffic
	// must never abort a serving process. Scenario.Resume recovers
	// Scenario.CheckpointDir's durable state before accepting events.
	Scenario workload.Config
	// Meta fixes the served trace's identity: name, device population and
	// duration (day bounds for admission). Meta.Advertisers pre-registers
	// queriers; more may register over POST /v1/queries until the first
	// event seals the run. A resumed server requires the full querier set
	// here — registration is closed at boot.
	Meta dataset.Meta
	// IngestBuffer bounds the admission queue between the HTTP handlers
	// and the service's ingest queue — the backpressure window surfaced
	// as 429s. 0 selects 4096.
	IngestBuffer int
	// ShedDelay enables queue-delay overload shedding (DESIGN.md §14):
	// when the oldest enqueued-but-unapplied event has been waiting longer
	// than ShedDelay, ingest requests are shed with a fast 429
	// (CodeOverload) carrying Retry-After, instead of joining a queue
	// whose latency has already collapsed. Queue *delay* rather than queue
	// *depth* is the signal, so a deep-but-draining queue is fine and a
	// shallow-but-stuck one sheds. 0 disables shedding (backpressure 429s
	// still apply when the queue is full).
	ShedDelay time.Duration
}

// Server states, in order.
const (
	stateRegistering int32 = iota // accepting registrations, no events yet
	stateServing                  // run sealed, ingesting
	stateDraining                 // shutdown requested, queue draining
	stateDone                     // run finished (see runErr)
)

func stateString(st int32) string {
	switch st {
	case stateRegistering:
		return "registering"
	case stateServing:
		return "serving"
	case stateDraining:
		return "draining"
	default:
		return "done"
	}
}

// cursor is one device's admission high-water mark: the (day, id) of its
// newest admitted event. Admission requires strict (day, id) progress per
// device, so the event ID doubles as the retry-dedupe sequence number.
//
// The server keeps two cursors per device. The dedupe cursor advances at
// enqueue time and is what admission checks against; the applied cursor
// advances only when the service commits the admission (onAdmit, after
// the WAL append), and is what a 200 response waits on. The gap between
// them is exactly the ingest queue.
type cursor struct {
	day int
	id  events.EventID
}

// before reports whether the cursor admits an event at (day, id).
func (c cursor) before(ev events.Event) bool {
	return !c.covers(cursor{ev.Day, ev.ID})
}

// covers reports whether the cursor has reached (o.day, o.id): an
// admission at that position is durable once the applied cursor covers it.
func (c cursor) covers(o cursor) bool {
	return c.day > o.day || (c.day == o.day && c.id >= o.id)
}

// appliedWaiter parks one handler until a device's applied cursor covers
// a threshold — the batch's newest admission on that device. onAdmit
// closes ch when the threshold is reached.
type appliedWaiter struct {
	device events.DeviceID
	need   cursor
	ch     chan struct{}
}

// netSource adapts the admission queue to dataset.Source: the service's
// producer goroutine drains it like any trace. Closing ch ends the run;
// suspended distinguishes a graceful suspend (drain and keep resumable
// state) from reaching the end of the trace.
type netSource struct {
	meta      dataset.Meta
	ch        chan events.Event
	ready     chan struct{}
	readyOnce sync.Once
	suspended atomic.Bool
	// clock tracks enqueue instants for the shedding gate (nil when
	// shedding is disabled, keeping the hot path untouched).
	clock *queueClock
}

// Meta implements dataset.Source.
func (s *netSource) Meta() dataset.Meta { return s.meta }

// Next implements dataset.Source. The first call marks the source ready:
// on a resumed service it happens only after ResumeFrom finished its
// restore and WAL replay, which is the admission layer's signal that the
// dedupe cursors are fully rebuilt and events may be accepted.
func (s *netSource) Next() (events.Event, bool) {
	s.readyOnce.Do(func() { close(s.ready) })
	ev, ok := <-s.ch
	return ev, ok
}

// queueClock is the shedding gate's FIFO of enqueue instants, running in
// lockstep with the admission pipeline: handlers push as they enqueue,
// onAdmit pops when the admission commits, and headAge is how long the
// oldest enqueued-but-unapplied event has been waiting — the end-to-end
// queue-delay overload signal (it spans the admission queue AND the
// service's internal ingest queue, so backlog hiding in either shows
// up). debt absorbs pops with no matching push (defensive; live pushes
// and pops are serialized under the server mutex).
type queueClock struct {
	mu    sync.Mutex
	times []int64
	head  int
	debt  int
}

func (q *queueClock) push(t int64) {
	q.mu.Lock()
	if q.debt > 0 {
		q.debt--
		q.mu.Unlock()
		return
	}
	if q.head > 1024 && q.head*2 >= len(q.times) {
		q.times = append(q.times[:0], q.times[q.head:]...)
		q.head = 0
	}
	q.times = append(q.times, t)
	q.mu.Unlock()
}

func (q *queueClock) pop() {
	q.mu.Lock()
	if q.head < len(q.times) {
		q.head++
	} else {
		q.debt++
	}
	q.mu.Unlock()
}

func (q *queueClock) headAge(now int64) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.times) {
		return 0
	}
	return time.Duration(now - q.times[q.head])
}

// Suspended implements dataset.Suspender.
func (s *netSource) Suspended() bool { return s.suspended.Load() }

// Stats is a point-in-time snapshot of the server's admission telemetry.
type Stats struct {
	State string `json:"state"`
	// EventsAccepted counts events admitted into the queue; Duplicates-
	// Rejected counts (device, seq) regressions refused at admission —
	// retried deliveries and per-device reordering alike. LateDropped
	// counts admitted events the service's day clock dropped as late.
	EventsAccepted     int64 `json:"eventsAccepted"`
	DuplicatesRejected int64 `json:"duplicatesRejected"`
	LateDropped        int64 `json:"lateDropped"`
	// Backpressured counts ingest requests pushed back with a 429.
	Backpressured int64 `json:"backpressured"`
	// Shed counts ingest requests refused by the overload gate: the
	// admission queue's head had been waiting past Config.ShedDelay, so
	// the request got a fast 429 + Retry-After instead of queueing.
	Shed          int64 `json:"shed"`
	BadRequests   int64 `json:"badRequests"`
	Results       int   `json:"results"`
	QueueDepth    int   `json:"queueDepth"`
	QueueCapacity int   `json:"queueCapacity"`
	// Final-run telemetry, populated once State is "done" without error.
	EventsIngested int `json:"eventsIngested,omitempty"`
	EventsDropped  int `json:"eventsDropped,omitempty"`
	// MaxQueueDelayMicros/AvgQueueDelayMicros are the service's ingest-
	// queue sojourn telemetry from the finished run — the measured side of
	// the signal ShedDelay acts on.
	MaxQueueDelayMicros int64 `json:"maxQueueDelayMicros,omitempty"`
	AvgQueueDelayMicros int64 `json:"avgQueueDelayMicros,omitempty"`
}

// Server is one served measurement run. Create with NewServer, expose
// Handler over any net/http server, and stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu          sync.Mutex
	state       int32
	advertisers []dataset.Advertiser
	advBySite   map[events.Site]dataset.Advertiser
	src         *netSource
	// cursors is the dedupe cursor (advanced at enqueue); applied is the
	// durable high-water mark (advanced in onAdmit). See type cursor.
	cursors map[events.DeviceID]cursor
	applied map[events.DeviceID]cursor
	waiters map[events.DeviceID][]*appliedWaiter
	results []stream.Result
	stats   Stats
	run     *workload.Run
	runErr  error

	done  chan struct{} // closed when the service goroutine finishes
	ready chan struct{} // closed once admission may accept events
}

// NewServer validates cfg and builds a server. A resumed configuration
// (Scenario.Resume) seals immediately and starts recovery; otherwise the
// server accepts registrations until the first event arrives.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Scenario.Dataset != nil {
		return nil, fmt.Errorf("serve: Scenario.Dataset must be nil (events arrive over the network)")
	}
	if cfg.Meta.PopulationDevices <= 0 || cfg.Meta.DurationDays <= 0 {
		return nil, fmt.Errorf("serve: Meta needs a positive device population and duration")
	}
	if cfg.Meta.Name == "" {
		cfg.Meta.Name = "served"
	}
	if cfg.IngestBuffer == 0 {
		cfg.IngestBuffer = 4096
	}
	if cfg.IngestBuffer < 0 {
		return nil, fmt.Errorf("serve: negative ingest buffer")
	}
	if cfg.ShedDelay < 0 {
		return nil, fmt.Errorf("serve: negative shed delay")
	}
	s := &Server{
		cfg:       cfg,
		advBySite: make(map[events.Site]dataset.Advertiser),
		cursors:   make(map[events.DeviceID]cursor),
		applied:   make(map[events.DeviceID]cursor),
		waiters:   make(map[events.DeviceID][]*appliedWaiter),
		done:      make(chan struct{}),
		ready:     make(chan struct{}),
	}
	s.stats.QueueCapacity = cfg.IngestBuffer
	for i, a := range cfg.Meta.Advertisers {
		adv, rerr := RegistrationFromAdvertiser(a).decode()
		if rerr != nil {
			return nil, fmt.Errorf("serve: preset querier %d: %w", i, rerr)
		}
		if _, dup := s.advBySite[adv.Site]; dup {
			return nil, fmt.Errorf("serve: duplicate preset querier %s", adv.Site)
		}
		s.advertisers = append(s.advertisers, adv)
		s.advBySite[adv.Site] = adv
	}
	s.buildMux()
	if cfg.Scenario.Resume {
		if len(s.advertisers) == 0 {
			return nil, fmt.Errorf("serve: resume requires the querier set up front (Meta.Advertisers)")
		}
		s.mu.Lock()
		s.seal()
		s.mu.Unlock()
	}
	return s, nil
}

// seal closes registration and starts the measurement service over the
// admission queue. Caller holds mu.
func (s *Server) seal() {
	meta := s.cfg.Meta
	meta.Advertisers = slices.Clone(s.advertisers)
	src := &netSource{
		meta:  meta,
		ch:    make(chan events.Event, s.cfg.IngestBuffer),
		ready: s.ready,
	}
	if s.cfg.ShedDelay > 0 {
		src.clock = &queueClock{}
	}
	s.src = src
	s.state = stateServing

	wcfg := s.cfg.Scenario
	wcfg.Dataset = nil
	wcfg.DropLate = true
	wcfg.LiveSource = true
	wcfg.AdmitObserver = s.onAdmit
	wcfg.ResultObserver = s.onResult
	go s.runService(wcfg, src)
	if !wcfg.Resume {
		// Fresh runs have no recovery to wait for; resumed runs become
		// ready on the service's first Next call, after restore + replay.
		src.readyOnce.Do(func() { close(src.ready) })
	}
}

// runService drives the workload to completion on its own goroutine.
func (s *Server) runService(wcfg workload.Config, src *netSource) {
	run, err := workload.ExecuteSource(wcfg, src)
	s.mu.Lock()
	s.run, s.runErr = run, err
	s.state = stateDone
	if run != nil {
		s.stats.EventsIngested = run.EventsIngested
		s.stats.EventsDropped = run.EventsDropped
		s.stats.MaxQueueDelayMicros = run.MaxQueueDelay.Microseconds()
		s.stats.AvgQueueDelayMicros = run.AvgQueueDelay.Microseconds()
	}
	close(s.done)
	s.mu.Unlock()
}

// onAdmit runs on the service goroutine for every committed admission
// decision — live, restored, or replayed. It advances both cursors (so
// recovery rebuilds them from durable state) and releases every handler
// whose batch the applied cursor now covers, which is what makes a 200
// mean "WAL-logged and applied", not "enqueued". A late drop advances the
// cursors too: the admission decision is durable (WAL-logged, and carried
// by snapshots as a drop mark) even though the event never reaches the
// store, so a resumed server must keep rejecting its retries as
// duplicates rather than re-admitting and re-dropping them.
func (s *Server) onAdmit(ev events.Event, dropped bool) {
	s.mu.Lock()
	if dropped {
		s.stats.LateDropped++
	}
	if s.src != nil && s.src.clock != nil {
		// Pop the shed clock only for live admissions: replayed admissions
		// (resume recovery, which runs before the source turns ready) were
		// never pushed by a handler this incarnation.
		select {
		case <-s.src.ready:
			s.src.clock.pop()
		default:
		}
	}
	c := cursor{ev.Day, ev.ID}
	if prev, ok := s.applied[ev.Device]; !ok || prev.before(ev) {
		s.applied[ev.Device] = c
	}
	if prev, ok := s.cursors[ev.Device]; !ok || prev.before(ev) {
		s.cursors[ev.Device] = c
	}
	if ws, ok := s.waiters[ev.Device]; ok {
		applied := s.applied[ev.Device]
		kept := ws[:0]
		for _, w := range ws {
			if applied.covers(w.need) {
				close(w.ch)
			} else {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(s.waiters, ev.Device)
		} else {
			s.waiters[ev.Device] = kept
		}
	}
	s.mu.Unlock()
}

// resolveStopped runs when the service stopped while a handler was parked
// on its waiters: any waiter still registered was not applied before the
// stop, so the batch is not durable and the client must retry. Waiters
// are deregistered either way.
func (s *Server) resolveStopped(waits []*appliedWaiter) (pending bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range waits {
		ws := s.waiters[w.device]
		if i := slices.Index(ws, w); i >= 0 {
			ws = slices.Delete(ws, i, i+1)
			if len(ws) == 0 {
				delete(s.waiters, w.device)
			} else {
				s.waiters[w.device] = ws
			}
			pending = true
		}
	}
	return pending
}

// onResult runs on the service goroutine for every released (or restored)
// query result, in canonical order; /v1/results serves from this buffer.
func (s *Server) onResult(res stream.Result) {
	s.mu.Lock()
	s.results = append(s.results, res)
	s.stats.Results = len(s.results)
	s.mu.Unlock()
}

// Handler returns the /v1 API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Done is closed when the served run has finished (cleanly or not).
func (s *Server) Done() <-chan struct{} { return s.done }

// Run returns the completed run once Done is closed.
func (s *Server) Run() (*workload.Run, error) {
	select {
	case <-s.done:
	default:
		return nil, fmt.Errorf("serve: run still in progress")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run, s.runErr
}

// StatsSnapshot returns the current admission telemetry.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	st := s.stats
	st.State = stateString(s.state)
	if s.state == stateDone && s.runErr != nil {
		st.State = "failed"
	}
	if s.src != nil {
		st.QueueDepth = len(s.src.ch)
	}
	return st
}

// Shutdown drains and stops the server. final closes out the trace (the
// in-progress day flushes and the run completes, exactly as if the source
// had drained); !final suspends — the admission queue drains through the
// service, the group-commit syncer flushes, a final generation commits
// when the state is snapshot-clean, and the run is resumable from the
// checkpoint directory. Both wait for the service to finish (or ctx).
func (s *Server) Shutdown(ctx context.Context, final bool) (*workload.Run, error) {
	s.mu.Lock()
	switch s.state {
	case stateRegistering:
		// Never sealed: no service to drain.
		s.state = stateDone
		close(s.done)
		s.mu.Unlock()
		return nil, nil
	case stateServing:
		s.state = stateDraining
		s.src.suspended.Store(!final)
		close(s.src.ch)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.run, s.runErr
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) buildMux() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/events", s.handleEvents)
	s.mux.HandleFunc("/v1/queries", s.handleQueries)
	s.mux.HandleFunc("/v1/results", s.handleResults)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/meta", s.handleMeta)
	s.mux.HandleFunc("/v1/shutdown", s.handleShutdown)
}

// retryAfter stamps a pushback response (429/503) with retry guidance:
// the standard integer-seconds Retry-After header (ceiling, minimum 1)
// plus a precise milliseconds hint returned for the body's retryAfterMs,
// so clients with sub-second backoff need not round up to a full second.
func retryAfter(w http.ResponseWriter, d time.Duration) int64 {
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	secs := (d + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
	return d.Milliseconds()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError reports a RequestError as a 400 and counts it.
func (s *Server) writeError(w http.ResponseWriter, status int, rerr *RequestError) {
	s.mu.Lock()
	s.stats.BadRequests++
	s.mu.Unlock()
	writeJSON(w, status, ErrorResponse{Error: rerr.Msg, Code: rerr.Code, Index: rerr.Index})
}

// decodeBody decodes a JSON body under the size cap, distinguishing the
// oversized case (413) from malformed JSON (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, *RequestError) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge,
				reqErr(CodeBodyTooLarge, "body exceeds %d bytes", MaxBodyBytes)
		}
		return http.StatusBadRequest, reqErr(CodeMalformedJSON, "decoding body: %v", err)
	}
	return 0, nil
}

// handleEvents is POST /v1/events: validate the whole batch, admit it in
// order under the dedupe cursors, and acknowledge only after the service
// has WAL-logged and applied the batch's last admitted event — or, for a
// batch of pure duplicates, once the applied cursor covers every
// duplicated admission, so a 200 means durable even when the originals
// were still queued when the retry arrived.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req IngestRequest
	if status, rerr := decodeBody(w, r, &req); rerr != nil {
		s.writeError(w, status, rerr)
		return
	}
	if len(req.Events) > MaxBatchEvents {
		s.writeError(w, http.StatusBadRequest,
			reqErr(CodeTooManyEvents, "%d events exceed the %d per-request cap",
				len(req.Events), MaxBatchEvents))
		return
	}
	decoded := make([]events.Event, len(req.Events))
	for i, ew := range req.Events {
		ev, rerr := ew.decode(s.cfg.Meta.DurationDays)
		if rerr != nil {
			rerr.Index = i
			s.writeError(w, http.StatusBadRequest, rerr)
			return
		}
		decoded[i] = ev
	}

	s.mu.Lock()
	// Advertisers must be known before anything is admitted (or the run
	// sealed): the planner only schedules registered query streams, so an
	// unknown site is a client error, not a silent no-op.
	for i, ev := range decoded {
		if _, ok := s.advBySite[ev.Advertiser]; !ok {
			s.mu.Unlock()
			rerr := reqErr(CodeUnknownAdvertiser, "advertiser %q is not registered", ev.Advertiser)
			rerr.Index = i
			s.writeError(w, http.StatusBadRequest, rerr)
			return
		}
	}
	switch s.state {
	case stateRegistering:
		s.seal()
	case stateServing:
	default:
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: "service is not accepting events", Code: CodeUnavailable})
		return
	}
	src := s.src
	s.mu.Unlock()

	// Recovery gate: a resumed service must finish rebuilding the dedupe
	// cursors (restore + WAL replay) before any admission check is sound.
	select {
	case <-src.ready:
	default:
		ms := retryAfter(w, 100*time.Millisecond)
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: "service is recovering; retry", Code: CodeUnavailable, RetryAfterMs: ms})
		return
	}

	// Overload gate: shed before queueing when the admission queue's head
	// has waited past ShedDelay. A fast 429 + Retry-After converts
	// sustained saturation into client backoff instead of unbounded
	// latency; the gate self-clears as the service drains the backlog.
	if shed := s.cfg.ShedDelay; shed > 0 && src.clock != nil {
		if age := src.clock.headAge(time.Now().UnixNano()); age > shed {
			s.mu.Lock()
			s.stats.Shed++
			s.mu.Unlock()
			ms := retryAfter(w, age)
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
				Error:        "overloaded: admission queue delay exceeds the shed threshold",
				Code:         CodeOverload,
				RetryAfterMs: ms,
			})
			return
		}
	}

	s.mu.Lock()
	if s.state != stateServing {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: "service is not accepting events", Code: CodeUnavailable})
		return
	}
	accepted, duplicates := 0, 0
	backpressured := false
	var lastDev events.DeviceID
	var lastNeed cursor
	var enqNow int64
	if src.clock != nil {
		enqNow = time.Now().UnixNano()
	}
	for _, ev := range decoded {
		if c, ok := s.cursors[ev.Device]; ok && !c.before(ev) {
			duplicates++
			continue
		}
		select {
		case src.ch <- ev:
			s.cursors[ev.Device] = cursor{ev.Day, ev.ID}
			lastDev, lastNeed = ev.Device, cursor{ev.Day, ev.ID}
			accepted++
			if src.clock != nil {
				src.clock.push(enqNow)
			}
		default:
			backpressured = true
		}
		if backpressured {
			break
		}
	}
	s.stats.EventsAccepted += int64(accepted)
	s.stats.DuplicatesRejected += int64(duplicates)
	var waits []*appliedWaiter
	switch {
	case backpressured:
		s.stats.Backpressured++
	case accepted > 0:
		// The ingest channel is FIFO and onAdmit fires in drain order, so
		// the batch's last enqueued event applying implies every earlier
		// admission applied too — including the original behind each
		// duplicate in this batch, which was necessarily enqueued first.
		wt := &appliedWaiter{device: lastDev, need: lastNeed, ch: make(chan struct{})}
		s.waiters[lastDev] = append(s.waiters[lastDev], wt)
		waits = append(waits, wt)
	case duplicates > 0:
		// All-duplicate batch: the 200 still promises durability, and the
		// originals may still be sitting in the ingest queue (a client
		// retrying a timed-out batch races its own first delivery). Wait
		// until the applied cursor covers each device's newest duplicate.
		need := make(map[events.DeviceID]cursor)
		for _, ev := range decoded {
			if c, ok := need[ev.Device]; !ok || c.before(ev) {
				need[ev.Device] = cursor{ev.Day, ev.ID}
			}
		}
		for dev, c := range need {
			if s.applied[dev].covers(c) {
				continue
			}
			wt := &appliedWaiter{device: dev, need: c, ch: make(chan struct{})}
			s.waiters[dev] = append(s.waiters[dev], wt)
			waits = append(waits, wt)
		}
	}
	s.mu.Unlock()

	if backpressured {
		// The admitted prefix stays admitted (its cursors advanced); the
		// client retries the whole batch and the prefix deduplicates.
		// Duplicates reports dedupe hits in the processed prefix so an
		// observer can account for every delivery even on a 429.
		ms := retryAfter(w, 50*time.Millisecond)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: "ingest queue full", Code: CodeBackpressure,
			Accepted: accepted, Duplicates: duplicates,
			RetryAfterMs: ms,
		})
		return
	}
	for i, wt := range waits {
		select {
		case <-wt.ch:
			continue
		case <-s.done:
			// The service stopped while the batch was in flight. Waiters
			// the observer released before the stop are durable; any still
			// registered are not, and the client must retry against a
			// recovered server.
			if s.resolveStopped(waits[i:]) {
				writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
					Error: "service stopped before the batch was applied; retry after recovery",
					Code:  CodeUnavailable,
				})
				return
			}
		}
		break
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted, Duplicates: duplicates})
}

// handleQueries is POST /v1/queries (register a querier) and GET
// /v1/queries (list registrations).
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		regs := make([]QueryRegistration, len(s.advertisers))
		for i, a := range s.advertisers {
			regs[i] = RegistrationFromAdvertiser(a)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, regs)
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		return
	}
	var reg QueryRegistration
	if status, rerr := decodeBody(w, r, &reg); rerr != nil {
		s.writeError(w, status, rerr)
		return
	}
	adv, rerr := reg.decode()
	if rerr != nil {
		s.writeError(w, http.StatusBadRequest, rerr)
		return
	}
	s.mu.Lock()
	if existing, ok := s.advBySite[adv.Site]; ok {
		// Idempotent re-registration is fine at any time; changing an
		// existing registration never is.
		idx := slices.IndexFunc(s.advertisers, func(a dataset.Advertiser) bool {
			return a.Site == adv.Site
		})
		n := len(s.advertisers)
		s.mu.Unlock()
		if advertisersEqual(existing, adv) {
			writeJSON(w, http.StatusOK, RegistrationResponse{Index: idx, Queriers: n})
			return
		}
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("querier %s is already registered with different parameters", adv.Site),
			Code:  CodeConflict,
		})
		return
	}
	if s.state != stateRegistering {
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: "the run has started; registration is sealed", Code: CodeSealed,
		})
		return
	}
	s.advertisers = append(s.advertisers, adv)
	s.advBySite[adv.Site] = adv
	resp := RegistrationResponse{Index: len(s.advertisers) - 1, Queriers: len(s.advertisers)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleResults is GET /v1/results?querier=SITE&after=INDEX: released
// results in canonical order, filtered to one querier if asked, strictly
// after the client's cursor.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	querier := r.URL.Query().Get("querier")
	after := -1
	if a := r.URL.Query().Get("after"); a != "" {
		n, err := strconv.Atoi(a)
		if err != nil {
			s.writeError(w, http.StatusBadRequest,
				reqErr(CodeBadQuery, "after must be an integer, got %q", a))
			return
		}
		after = n
	}
	resp := ResultsResponse{Results: []ResultWire{}}
	s.mu.Lock()
	for _, res := range s.results {
		if res.Index <= after || (querier != "" && string(res.Querier) != querier) {
			continue
		}
		resp.Results = append(resp.Results, wireFromResult(res))
	}
	// A suspended run also ends with a nil error, but it is resumable and
	// more results will be released after resume — only a finished run may
	// tell pollers to stop.
	resp.Complete = s.state == stateDone && s.runErr == nil &&
		(s.src == nil || !s.src.suspended.Load())
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	st := s.statsLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleMeta is GET /v1/meta.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	resp := MetaResponse{
		Name:              s.cfg.Meta.Name,
		PopulationDevices: s.cfg.Meta.PopulationDevices,
		DurationDays:      s.cfg.Meta.DurationDays,
		Queriers:          len(s.advertisers),
		State:             stateString(s.state),
		Resumed:           s.cfg.Scenario.Resume,
	}
	if s.state == stateDone && s.runErr != nil {
		resp.State = "failed"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleShutdown is POST /v1/shutdown: drain the run (final by default,
// suspend with {"final": false}) and report its summary.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	final := true
	var req ShutdownRequest
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// An empty body selects the default (final). Anything else that
		// fails to decode is refused before the irreversible drain: a
		// corrupted suspend request ({"final": false}) must not silently
		// close out a run that was meant to stay resumable.
		if !errors.Is(err, io.EOF) {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				s.writeError(w, http.StatusRequestEntityTooLarge,
					reqErr(CodeBodyTooLarge, "body exceeds %d bytes", MaxBodyBytes))
				return
			}
			s.writeError(w, http.StatusBadRequest,
				reqErr(CodeMalformedJSON, "decoding body: %v", err))
			return
		}
	} else if req.Final != nil {
		final = *req.Final
	}
	run, err := s.Shutdown(r.Context(), final)
	resp := ShutdownResponse{State: "done"}
	if err != nil {
		resp.State, resp.Error = "failed", err.Error()
	}
	if run != nil {
		resp.EventsIngested = run.EventsIngested
		resp.EventsDropped = run.EventsDropped
		resp.Results = len(run.Results)
	}
	writeJSON(w, http.StatusOK, resp)
}
