package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// tinyMeta is a minimal serving identity for handler-level tests.
func tinyMeta() dataset.Meta {
	return dataset.Meta{Name: "tiny", PopulationDevices: 64, DurationDays: 4}
}

func tinyAdvertiser() dataset.Advertiser {
	return dataset.Advertiser{
		Site:           "shop.example",
		Products:       []string{"p0"},
		MaxValue:       100,
		AvgReportValue: 20,
		BatchSize:      10,
	}
}

// validEvent is a conversion the tiny server accepts.
func validEvent(id uint64) string {
	return fmt.Sprintf(`{"id":%d,"kind":"conversion","device":%d,"day":0,`+
		`"advertiser":"shop.example","product":"p0","value":5}`, id, id%64)
}

// TestIngestValidation drives every malformed-input class the network
// audit identified through POST /v1/events and asserts each is refused
// with the right status and typed error code — never a panic, never a
// silent admission. The server here has a live service behind it, so an
// admission slipping through would corrupt real state.
func TestIngestValidation(t *testing.T) {
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     meta,
	})
	c := newClient(t, ts)

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed-json", `{"events": [`, http.StatusBadRequest, serve.CodeMalformedJSON},
		{"not-an-object", `[]`, http.StatusBadRequest, serve.CodeMalformedJSON},
		{"zero-id", `{"events":[{"id":0,"kind":"conversion","device":1,"day":0,"advertiser":"shop.example","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadID},
		{"unknown-kind", `{"events":[{"id":1,"kind":"click","device":1,"day":0,"advertiser":"shop.example"}]}`,
			http.StatusBadRequest, serve.CodeBadKind},
		{"negative-day", `{"events":[{"id":1,"kind":"conversion","device":1,"day":-1,"advertiser":"shop.example","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadDay},
		{"day-past-duration", `{"events":[{"id":1,"kind":"conversion","device":1,"day":4,"advertiser":"shop.example","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadDay},
		{"negative-value", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"shop.example","product":"p0","value":-3}]}`,
			http.StatusBadRequest, serve.CodeBadValue},
		{"huge-value", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"shop.example","product":"p0","value":1e13}]}`,
			http.StatusBadRequest, serve.CodeBadValue},
		{"conversion-without-product", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"shop.example","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadProduct},
		{"impression-with-value", `{"events":[{"id":1,"kind":"impression","device":1,"day":0,"advertiser":"shop.example","publisher":"news.example","value":2}]}`,
			http.StatusBadRequest, serve.CodeBadValue},
		{"empty-advertiser", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadSite},
		{"oversized-site", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"` +
			strings.Repeat("a", 300) + `","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeBadSite},
		{"unknown-advertiser", `{"events":[{"id":1,"kind":"conversion","device":1,"day":0,"advertiser":"rogue.example","product":"p0","value":1}]}`,
			http.StatusBadRequest, serve.CodeUnknownAdvertiser},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, resp := c.do(http.MethodPost, "/v1/events", []byte(tc.body))
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, resp)
			}
			var er serve.ErrorResponse
			if err := json.Unmarshal(resp, &er); err != nil {
				t.Fatalf("error body not JSON: %s", resp)
			}
			if er.Code != tc.code {
				t.Fatalf("code %q, want %q (%s)", er.Code, tc.code, er.Error)
			}
		})
	}

	t.Run("too-many-events", func(t *testing.T) {
		var sb strings.Builder
		sb.WriteString(`{"events":[`)
		for i := 0; i <= serve.MaxBatchEvents; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(validEvent(uint64(i + 1)))
		}
		sb.WriteString(`]}`)
		status, resp := c.do(http.MethodPost, "/v1/events", []byte(sb.String()))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
		var er serve.ErrorResponse
		_ = json.Unmarshal(resp, &er)
		if er.Code != serve.CodeTooManyEvents {
			t.Fatalf("code %q, want %q", er.Code, serve.CodeTooManyEvents)
		}
	})

	t.Run("oversized-body", func(t *testing.T) {
		// The padding lives inside the JSON document, so the decoder must
		// read through it and trip the byte cap.
		body := `{"pad":"` + strings.Repeat("a", serve.MaxBodyBytes+1) + `","events":[]}`
		status, _ := c.do(http.MethodPost, "/v1/events", []byte(body))
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", status)
		}
	})

	t.Run("wrong-method", func(t *testing.T) {
		status, _ := c.do(http.MethodGet, "/v1/events", nil)
		if status != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", status)
		}
	})

	// A 400 admits nothing: the valid prefix of a batch with one bad event
	// must not be ingested, so the client can fix and re-send the whole
	// batch without creating duplicates.
	t.Run("atomic-batches", func(t *testing.T) {
		body := `{"events":[` + validEvent(1000) + `,{"id":0,"kind":"conversion","device":1,"day":0,"advertiser":"shop.example","product":"p0","value":1}]}`
		status, resp := c.do(http.MethodPost, "/v1/events", []byte(body))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
		var er serve.ErrorResponse
		_ = json.Unmarshal(resp, &er)
		if er.Index != 1 {
			t.Fatalf("error index %d, want 1", er.Index)
		}
		st, _, _ := c.sendBatch([]events.Event{{
			ID: 1000, Kind: events.KindConversion, Device: 1000 % 64, Day: 0,
			Advertiser: "shop.example", Product: "p0", Value: 5,
		}})
		if st != http.StatusOK {
			t.Fatalf("re-send of valid event: status %d", st)
		}
	})
}

// TestRegistrationLifecycle covers the querier registration semantics:
// idempotent re-registration, conflicting re-registration, the seal on
// first event, and parameter validation.
func TestRegistrationLifecycle(t *testing.T) {
	ts := newTestServer(t, serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     tinyMeta(),
	})
	c := newClient(t, ts)
	adv := tinyAdvertiser()

	body, _ := json.Marshal(serve.RegistrationFromAdvertiser(adv))
	if status, _ := c.do(http.MethodPost, "/v1/queries", body); status != http.StatusOK {
		t.Fatalf("first registration: status %d", status)
	}
	// Same parameters again: idempotent 200 at the same index.
	status, resp := c.do(http.MethodPost, "/v1/queries", body)
	if status != http.StatusOK {
		t.Fatalf("idempotent re-registration: status %d", status)
	}
	var rr serve.RegistrationResponse
	_ = json.Unmarshal(resp, &rr)
	if rr.Index != 0 || rr.Queriers != 1 {
		t.Fatalf("re-registration index %d queriers %d, want 0/1", rr.Index, rr.Queriers)
	}
	// Different parameters: conflict.
	changed := adv
	changed.BatchSize = 99
	body2, _ := json.Marshal(serve.RegistrationFromAdvertiser(changed))
	if status, _ := c.do(http.MethodPost, "/v1/queries", body2); status != http.StatusConflict {
		t.Fatalf("conflicting re-registration: status %d, want 409", status)
	}
	// Invalid parameters: the calibration math divides by batch size and
	// report values, so zero/negative/NaN-adjacent inputs are refused here
	// rather than panicking inside the service.
	for name, reg := range map[string]serve.QueryRegistration{
		"zero-batch":     {Site: "b.example", Products: []string{"p"}, MaxValue: 1, AvgReportValue: 1, BatchSize: 0},
		"negative-max":   {Site: "b.example", Products: []string{"p"}, MaxValue: -1, AvgReportValue: 1, BatchSize: 5},
		"zero-avg":       {Site: "b.example", Products: []string{"p"}, MaxValue: 1, AvgReportValue: 0, BatchSize: 5},
		"empty-site":     {Site: "", Products: []string{"p"}, MaxValue: 1, AvgReportValue: 1, BatchSize: 5},
		"empty-products": {Site: "b.example", MaxValue: 1, AvgReportValue: 1, BatchSize: 5},
	} {
		b, _ := json.Marshal(reg)
		if status, resp := c.do(http.MethodPost, "/v1/queries", b); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", name, status, resp)
		}
	}

	// First event seals the run; new registrations are refused after.
	st, acc, _ := c.sendBatch([]events.Event{{
		ID: 1, Kind: events.KindConversion, Device: 3, Day: 0,
		Advertiser: adv.Site, Product: "p0", Value: 5,
	}})
	if st != http.StatusOK || acc != 1 {
		t.Fatalf("sealing event: status %d accepted %d", st, acc)
	}
	late := serve.QueryRegistration{Site: "late.example", Products: []string{"p"}, MaxValue: 1, AvgReportValue: 1, BatchSize: 5}
	b, _ := json.Marshal(late)
	status, resp = c.do(http.MethodPost, "/v1/queries", b)
	if status != http.StatusConflict {
		t.Fatalf("post-seal registration: status %d, want 409 (%s)", status, resp)
	}
	var er serve.ErrorResponse
	_ = json.Unmarshal(resp, &er)
	if er.Code != serve.CodeSealed {
		t.Fatalf("post-seal code %q, want %q", er.Code, serve.CodeSealed)
	}
	// But idempotent re-registration of the existing querier still works.
	if status, _ := c.do(http.MethodPost, "/v1/queries", body); status != http.StatusOK {
		t.Fatalf("post-seal idempotent re-registration: status %d", status)
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestBackpressure fills the admission pipeline while the service is
// wedged on its first event and asserts the overflow surfaces as a 429 —
// and that retrying the identical batch after the stall clears admits
// exactly the remainder, duplicating nothing.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	var once atomic.Bool
	scenario := workload.Config{
		EpsilonG: 1, Seed: 1, Parallelism: 1,
		FaultHook: func(p stream.FaultPoint) error {
			if p == stream.PointEventIngested && !once.Load() {
				<-release // wedge the consumer on the first ingested event
			}
			return nil
		},
	}
	meta := tinyMeta()
	meta.PopulationDevices = 4096
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{Scenario: scenario, Meta: meta, IngestBuffer: 8})
	c := newClient(t, ts)

	// 4096 events > ingest buffer (8) + service queue (1024): with the
	// consumer wedged, this single batch must overflow.
	evs := make([]events.Event, serve.MaxBatchEvents)
	for i := range evs {
		evs[i] = events.Event{
			ID: events.EventID(i + 1), Kind: events.KindConversion,
			Device: events.DeviceID(i), Day: 0,
			Advertiser: "shop.example", Product: "p0", Value: 1,
		}
	}
	req := serve.IngestRequest{Events: make([]serve.EventWire, len(evs))}
	for i, ev := range evs {
		req.Events[i] = serve.WireFromEvent(ev)
	}
	body, _ := json.Marshal(req)
	deadline := time.Now().Add(30 * time.Second)
	var er serve.ErrorResponse
	for {
		status, resp := c.do(http.MethodPost, "/v1/events", body)
		if status == http.StatusTooManyRequests {
			_ = json.Unmarshal(resp, &er)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw a 429 (last status %d)", status)
		}
	}
	if er.Code != serve.CodeBackpressure {
		t.Fatalf("429 code %q, want %q", er.Code, serve.CodeBackpressure)
	}
	if er.Accepted <= 0 || er.Accepted >= len(evs) {
		t.Fatalf("429 accepted %d, want a strict prefix of %d", er.Accepted, len(evs))
	}
	if st := ts.srv.StatsSnapshot(); st.Backpressured == 0 {
		t.Fatalf("backpressure not counted in telemetry")
	}

	// Unwedge and retry the identical batch: the admitted prefix must
	// dedupe and the remainder must land, with the books balancing.
	once.Store(true)
	close(release)
	st, _, _ := c.sendBatch(evs)
	if st != http.StatusOK {
		t.Fatalf("retry after stall: status %d", st)
	}
	stats := ts.srv.StatsSnapshot()
	if stats.EventsAccepted != int64(len(evs)) {
		t.Fatalf("accepted %d events total, want %d", stats.EventsAccepted, len(evs))
	}
	if stats.DuplicatesRejected == 0 {
		t.Fatalf("retry produced no duplicate rejections")
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
