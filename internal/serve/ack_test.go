package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

// ack_test.go pins the acknowledgement semantics of the serving contract:
// when a 200 may be sent, which admission decisions survive recovery, and
// which request shapes the control endpoints must refuse.

// tinyConv builds a conversion the tiny server accepts.
func tinyConv(dev uint64, day int, id uint64) events.Event {
	return events.Event{
		ID: events.EventID(id), Kind: events.KindConversion,
		Device: events.DeviceID(dev), Day: day,
		Advertiser: "shop.example", Product: "p0", Value: 2,
	}
}

// postOutcome carries one raw POST /v1/events result across goroutines
// (the concurrent tests can't use the harness client's t.Fatalf helpers
// off the test goroutine).
type postOutcome struct {
	status int
	resp   serve.IngestResponse
	err    error
}

// TestDuplicateRetryWaitsForApply is the concurrent-retry window the
// sequential recovery tests never open: a client times out and re-sends a
// batch whose original delivery is still in flight. The retry
// deduplicates against the enqueue-time cursor, but its 200 must not be
// sent until the original is WAL-appended and applied — otherwise a crash
// loses events the retry just acknowledged. The consumer is wedged at
// PointEventIngested (after the WAL append, before the admission
// observer), which holds the applied cursor back while the dedupe cursor
// already covers the event.
func TestDuplicateRetryWaitsForApply(t *testing.T) {
	release := make(chan struct{})
	reached := make(chan struct{})
	var once atomic.Bool
	scenario := workload.Config{
		EpsilonG: 1, Seed: 1, Parallelism: 1,
		FaultHook: func(p stream.FaultPoint) error {
			if p == stream.PointEventIngested && once.CompareAndSwap(false, true) {
				close(reached)
				<-release
			}
			return nil
		},
	}
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{Scenario: scenario, Meta: meta})
	// Unwedge on any exit path (registered after newTestServer, so it runs
	// before the httptest server's Close): a failing assertion must not
	// leave a parked handler deadlocking the cleanup.
	var unwedgeOnce sync.Once
	unwedge := func() { unwedgeOnce.Do(func() { close(release) }) }
	t.Cleanup(unwedge)

	body, _ := json.Marshal(serve.IngestRequest{
		Events: []serve.EventWire{serve.WireFromEvent(tinyConv(7, 0, 1))},
	})
	post := func() <-chan postOutcome {
		ch := make(chan postOutcome, 1)
		go func() {
			var out postOutcome
			resp, err := ts.http.Client().Post(
				ts.http.URL+"/v1/events", "application/json", bytes.NewReader(body))
			if err != nil {
				out.err = err
			} else {
				out.status = resp.StatusCode
				out.err = json.NewDecoder(resp.Body).Decode(&out.resp)
				resp.Body.Close()
			}
			ch <- out
		}()
		return ch
	}

	first := post()
	select {
	case <-reached:
	case out := <-first:
		t.Fatalf("original batch returned (%+v) before the consumer reached the wedge", out)
	case <-time.After(30 * time.Second):
		t.Fatalf("consumer never reached the ingest wedge")
	}

	// The original is now applied-but-unacknowledged and the wedge holds
	// the admission observer back. A verbatim retry is a duplicate-only
	// batch; before the applied-cursor wait it returned 200 immediately.
	retry := post()
	select {
	case out := <-retry:
		t.Fatalf("duplicate-only retry acknowledged (%+v) while the original was not applied", out)
	case out := <-first:
		t.Fatalf("original batch acknowledged (%+v) while wedged before its admission observer", out)
	case <-time.After(150 * time.Millisecond):
	}

	unwedge()
	for name, ch := range map[string]<-chan postOutcome{"original": first, "retry": retry} {
		select {
		case out := <-ch:
			if out.err != nil || out.status != http.StatusOK {
				t.Fatalf("%s batch: status %d err %v", name, out.status, out.err)
			}
			wantAcc, wantDup := 1, 0
			if name == "retry" {
				wantAcc, wantDup = 0, 1
			}
			if out.resp.Accepted != wantAcc || out.resp.Duplicates != wantDup {
				t.Fatalf("%s batch: accepted %d duplicates %d, want %d/%d",
					name, out.resp.Accepted, out.resp.Duplicates, wantAcc, wantDup)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s batch never completed after the wedge released", name)
		}
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestLateDropCursorSurvivesSuspendResume pins the hardest admission
// durability case: a device whose NEWEST admission was a late drop. The
// event never reaches the store, and a suspend subsumes the WAL into a
// final base snapshot, so the only carrier of that admission decision is
// the snapshot's drop mark. A resumed server must reject the retry as a
// duplicate — re-admitting and re-dropping it would double-count
// EventsIngested/EventsDropped versus the uncrashed run. Also pins that a
// suspended (resumable) run never reports results Complete.
func TestLateDropCursorSurvivesSuspendResume(t *testing.T) {
	dir := t.TempDir()
	scenario := workload.Config{
		EpsilonG: 1, Seed: 1, Parallelism: 1,
		CheckpointDir: dir, SnapshotEveryDays: 3, GroupCommitEvents: 1,
	}
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	tsA := newTestServer(t, serve.Config{Scenario: scenario, Meta: meta})
	cA := newClient(t, tsA)

	// Advance the day clock to day 2, then land device 1's second event on
	// day 1: admitted at the front door, late-dropped by the service. That
	// drop is device 1's admission high-water mark from here on.
	late := tinyConv(1, 1, 2)
	for i, ev := range []events.Event{tinyConv(1, 0, 1), tinyConv(2, 2, 1), late} {
		if st, acc, dup := cA.sendBatch([]events.Event{ev}); st != http.StatusOK || acc != 1 || dup != 0 {
			t.Fatalf("phase 1 event %d: status %d accepted %d duplicates %d", i, st, acc, dup)
		}
	}
	if st := tsA.srv.StatsSnapshot(); st.LateDropped != 1 {
		t.Fatalf("late drops counted %d, want 1", st.LateDropped)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	runA, err := tsA.srv.Shutdown(ctx, false /* suspend */)
	if err != nil {
		t.Fatalf("suspend: %v", err)
	}
	if runA == nil || runA.EventsIngested != 3 || runA.EventsDropped != 1 {
		t.Fatalf("suspended run books %+v, want 3 ingested / 1 dropped", runA)
	}
	// The suspended run ended with a nil error, but it is resumable: a
	// poller trusting Complete as its stop condition must keep polling.
	if rr := cA.results(""); rr.Complete {
		t.Fatalf("suspended run reports results Complete")
	}

	resumed := scenario
	resumed.Resume = true
	tsB := newTestServer(t, serve.Config{Scenario: resumed, Meta: meta})
	cB := newClient(t, tsB)
	if st, acc, dup := cB.sendBatch([]events.Event{late}); st != http.StatusOK || acc != 0 || dup != 1 {
		t.Fatalf("late-drop retry after resume: status %d accepted %d duplicates %d, want 200/0/1",
			st, acc, dup)
	}
	if sr := cB.shutdown(true); sr.State != "done" {
		t.Fatalf("final shutdown state %q: %s", sr.State, sr.Error)
	}
	runB, runErr := waitDone(t, tsB.srv)
	if runErr != nil {
		t.Fatalf("resumed run: %v", runErr)
	}
	if runB.EventsIngested != 3 || runB.EventsDropped != 1 {
		t.Fatalf("resumed run books %d ingested / %d dropped, want 3/1 (late drop re-admitted)",
			runB.EventsIngested, runB.EventsDropped)
	}
	if rr := cB.results(""); !rr.Complete {
		t.Fatalf("finished run must report results Complete")
	}
}

// TestShutdownBodyValidation: a malformed shutdown body is refused with a
// 400 before the irreversible drain — a corrupted suspend request must
// not silently close out a run that was meant to stay resumable. Only a
// genuinely empty body selects the final-by-default path.
func TestShutdownBodyValidation(t *testing.T) {
	meta := tinyMeta()
	meta.Advertisers = []dataset.Advertiser{tinyAdvertiser()}
	ts := newTestServer(t, serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     meta,
	})
	c := newClient(t, ts)
	if st, acc, _ := c.sendBatch([]events.Event{tinyConv(1, 0, 1)}); st != http.StatusOK || acc != 1 {
		t.Fatalf("seeding event: status %d accepted %d", st, acc)
	}

	for _, tc := range []struct{ name, body string }{
		{"truncated", `{"final":`},
		{"wrong-type", `{"final":"yes"}`},
		{"not-an-object", `[]`},
	} {
		status, resp := c.do(http.MethodPost, "/v1/shutdown", []byte(tc.body))
		if status != http.StatusBadRequest {
			t.Fatalf("%s body: status %d, want 400 (%s)", tc.name, status, resp)
		}
		var er serve.ErrorResponse
		_ = json.Unmarshal(resp, &er)
		if er.Code != serve.CodeMalformedJSON {
			t.Fatalf("%s body: code %q, want %q", tc.name, er.Code, serve.CodeMalformedJSON)
		}
	}
	if st := ts.srv.StatsSnapshot(); st.State != "serving" {
		t.Fatalf("state %q after refused shutdowns, want serving", st.State)
	}

	status, resp := c.do(http.MethodPost, "/v1/shutdown", nil)
	if status != http.StatusOK {
		t.Fatalf("empty-body shutdown: status %d (%s)", status, resp)
	}
	var sr serve.ShutdownResponse
	if err := json.Unmarshal(resp, &sr); err != nil {
		t.Fatalf("parsing shutdown response: %v", err)
	}
	if sr.State != "done" || sr.EventsIngested != 1 {
		t.Fatalf("empty-body shutdown: %+v, want done with 1 event", sr)
	}
}

// TestResultsAfterValidation: the results cursor must be a whole integer —
// trailing garbage ("5x") is a malformed cursor to reject, not a 5 to
// silently resume from.
func TestResultsAfterValidation(t *testing.T) {
	ts := newTestServer(t, serve.Config{
		Scenario: workload.Config{EpsilonG: 1, Seed: 1, Parallelism: 1},
		Meta:     tinyMeta(),
	})
	c := newClient(t, ts)

	for _, bad := range []string{"5x", "abc", "1.5", "0x10"} {
		status, resp := c.do(http.MethodGet, "/v1/results?after="+bad, nil)
		if status != http.StatusBadRequest {
			t.Fatalf("after=%s: status %d, want 400 (%s)", bad, status, resp)
		}
		var er serve.ErrorResponse
		_ = json.Unmarshal(resp, &er)
		if er.Code != serve.CodeBadQuery {
			t.Fatalf("after=%s: code %q, want %q", bad, er.Code, serve.CodeBadQuery)
		}
	}
	for _, ok := range []string{"7", "-1", "0"} {
		if status, resp := c.do(http.MethodGet, "/v1/results?after="+ok, nil); status != http.StatusOK {
			t.Fatalf("after=%s: status %d, want 200 (%s)", ok, status, resp)
		}
	}
	if _, err := tsShutdown(ts); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
