package bias

import (
	"math"
	"testing"
	"testing/quick"
)

func params() Params {
	return Params{Kappa: 10, NoiseStdDev: 14.14, Beta: 0.01, DeltaMax: 100}
}

func TestComputeZeroFlagsStillHasSlack(t *testing.T) {
	b := Compute(0, 10000, params())
	// Even with zero reported flags, the tail slack keeps the bound
	// positive: the querier can never be *certain* no report was biased.
	if b.FlaggedReports <= 0 {
		t.Fatalf("flagged = %v, want > 0 from noise slack", b.FlaggedReports)
	}
}

func TestComputeNegativeCountClamps(t *testing.T) {
	p := params()
	b := Compute(-1e9, 10000, p)
	if b.FlaggedReports != 0 || b.BiasL1 != 0 {
		t.Fatalf("negative count not clamped: %+v", b)
	}
	// RMSRE still includes the noise term.
	if want := p.NoiseStdDev / 10000; math.Abs(b.RMSRE-want) > 1e-12 {
		t.Fatalf("RMSRE = %v, want %v", b.RMSRE, want)
	}
}

func TestComputeScalesWithDeltaMax(t *testing.T) {
	p := params()
	b1 := Compute(50, 1000, p)
	p.DeltaMax *= 2
	b2 := Compute(50, 1000, p)
	if math.Abs(b2.BiasL1-2*b1.BiasL1) > 1e-9 {
		t.Fatalf("bias bound not linear in Δmax: %v vs %v", b1.BiasL1, b2.BiasL1)
	}
}

func TestComputeZeroEstimate(t *testing.T) {
	if !math.IsInf(Compute(1, 0, params()).RMSRE, 1) {
		t.Fatal("zero estimate should give +Inf RMSRE")
	}
}

func TestComputePanics(t *testing.T) {
	bad := []Params{
		{Kappa: 0, NoiseStdDev: 1, Beta: 0.1, DeltaMax: 1},
		{Kappa: 1, NoiseStdDev: 1, Beta: 0, DeltaMax: 1},
		{Kappa: 1, NoiseStdDev: 1, Beta: 1, DeltaMax: 1},
		{Kappa: 1, NoiseStdDev: -1, Beta: 0.1, DeltaMax: 1},
		{Kappa: 1, NoiseStdDev: 1, Beta: 0.1, DeltaMax: -1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			Compute(0, 1, p)
		}()
	}
}

func TestAcceptCutoff(t *testing.T) {
	b := Bound{RMSRE: 0.05}
	if !b.Accept(0.05) {
		t.Fatal("boundary should accept")
	}
	if b.Accept(0.049) {
		t.Fatal("above cutoff should reject")
	}
	if !b.Accept(math.Inf(1)) {
		t.Fatal("infinite cutoff should accept everything")
	}
}

// Property: the bound is a valid upper bound — with the true flag count
// (no noise on m0) and Δmax ≥ each report's actual change, the true bias is
// always below BiasL1.
func TestBoundDominatesTrueBiasQuick(t *testing.T) {
	f := func(flagged uint8, perReportBias uint8) bool {
		n := int(flagged)
		kappa := 10.0
		trueBias := 0.0
		deltaMax := 100.0
		per := math.Mod(float64(perReportBias), deltaMax)
		for i := 0; i < n; i++ {
			trueBias += per
		}
		m0 := kappa * float64(n) // exact count, κ-scaled
		b := Compute(m0, 1000, Params{Kappa: kappa, NoiseStdDev: 1, Beta: 0.01, DeltaMax: deltaMax})
		return b.BiasL1 >= trueBias-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMSRE bound is monotone in the flag count.
func TestBoundMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := params()
		return Compute(lo, 500, p).RMSRE <= Compute(hi, 500, p).RMSRE+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFloorStabilizesDenominator(t *testing.T) {
	p := params()
	p.ScaleFloor = 1000
	// A bias-shrunken estimate of 10 would explode the relative bound;
	// the floor keeps the denominator at the historical scale.
	floored := Compute(50, 10, p)
	p.ScaleFloor = 0
	raw := Compute(50, 10, p)
	if !(floored.RMSRE < raw.RMSRE) {
		t.Fatalf("floor did not tighten: %v vs %v", floored.RMSRE, raw.RMSRE)
	}
	// With an estimate above the floor, the floor is inert.
	p.ScaleFloor = 1000
	big := Compute(50, 5000, p)
	p.ScaleFloor = 0
	bigRaw := Compute(50, 5000, p)
	if big.RMSRE != bigRaw.RMSRE {
		t.Fatal("floor changed an above-floor estimate")
	}
}
