// Package bias implements the querier-side half of the paper's
// bias-measurement mechanism (§3.4, Appendix F). The device-side half — the
// κ-scaled per-report flag and its budget surcharge — lives in
// internal/core; this package turns the DP-aggregated flag count M₀(D) into
// the high-probability error bound of Thm. 15/16 and the cutoff-based query
// rejection evaluated in §6.5 (Fig. 7c).
package bias

import (
	"math"
)

// Bound is the querier's error assessment for one executed query.
type Bound struct {
	// FlaggedReports is the (noisy, debiased-at-zero) estimate of how
	// many reports could be affected by an out-of-budget epoch:
	// M₀(D)/κ plus the Laplace tail slack.
	FlaggedReports float64
	// BiasL1 is the high-probability upper bound on the query's absolute
	// bias: FlaggedReports · Δmax (Thm. 15's right-hand side).
	BiasL1 float64
	// RMSRE is the resulting upper bound on root-mean-square relative
	// error, combining the bias bound with the known Laplace noise
	// standard deviation.
	RMSRE float64
}

// Params configures the bound computation.
type Params struct {
	// Kappa is the flag scale κ the devices used.
	Kappa float64
	// NoiseStdDev is σ, the standard deviation of the Laplace noise the
	// aggregation service added per coordinate (√2·Δquery/ε).
	NoiseStdDev float64
	// Beta is the failure probability of the tail bound (the paper uses
	// the calibration β, 0.01).
	Beta float64
	// DeltaMax is max_r Δmax(ρ_r): the largest L1 change a report can
	// suffer from emptied epochs (Thm. 18; equals the report global
	// sensitivity for last-touch histograms).
	DeltaMax float64
	// ScaleFloor, when positive, floors the RMSRE denominator at the
	// querier's historical query magnitude (B·c̃). Under heavy bias the
	// released estimate shrinks toward zero, which would blow up the
	// relative bound even though the querier knows roughly how large the
	// true total is; flooring keeps the bound usable, as a querier with
	// calibration history would.
	ScaleFloor float64
}

// Compute turns the noisy flag count m0 (the side query's released value)
// and the query's released estimate into the Appendix F bound:
//
//	‖E[M(D) − Q(D)]‖₁ ≤ (M₀(D) + σ·ln(1/β)/√2)/κ · max_r Δmax(ρ_r)
//
// with probability 1−β. The RMSRE bound divides by |estimate| and folds in
// the noise variance 2·(σ/√2)²·... — for a Laplace(b) coordinate the RMS of
// the noise is σ itself, so RMSRE² ≈ (bias/|Q|)² + (σ/|Q|)².
func Compute(m0, estimate float64, p Params) Bound {
	if p.Kappa <= 0 {
		panic("bias: non-positive kappa")
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		panic("bias: beta outside (0,1)")
	}
	if p.NoiseStdDev < 0 || p.DeltaMax < 0 {
		panic("bias: negative noise or sensitivity")
	}
	slack := p.NoiseStdDev * math.Log(1/p.Beta) / math.Sqrt2
	flagged := (m0 + slack) / p.Kappa
	if flagged < 0 {
		flagged = 0 // noise can push the count negative; clamp
	}
	biasL1 := flagged * p.DeltaMax

	denom := math.Abs(estimate)
	if p.ScaleFloor > denom {
		denom = p.ScaleFloor
	}
	var rmsre float64
	if denom == 0 {
		rmsre = math.Inf(1)
	} else {
		rmsre = math.Sqrt(biasL1*biasL1+p.NoiseStdDev*p.NoiseStdDev) / denom
	}
	return Bound{FlaggedReports: flagged, BiasL1: biasL1, RMSRE: rmsre}
}

// Accept applies the §6.5 cutoff rule: the querier keeps the query's result
// only when the estimated RMSRE is at or below the cutoff. Rejected queries
// still consumed budget — rejection is post-processing.
func (b Bound) Accept(cutoff float64) bool {
	return b.RMSRE <= cutoff
}
