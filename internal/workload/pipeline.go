package workload

import (
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/stream"
)

// This file is the generate stage of the plan→generate→aggregate pipeline:
// per-conversion report generation fanned out across a bounded worker pool.
// The fan-out primitives (stream.FanOut, stream.GroupByDevice) live in the
// streaming service, which multiplexes whole days of queries through them;
// the batch engine applies them one query batch at a time.
//
// Determinism contract: Run results are bit-identical for every Parallelism
// value. Two properties make that hold. First, work is partitioned by
// device — a device's conversions within a batch execute sequentially in
// batch order, because they contend for the same privacy filters and the
// order decides which epoch a denial lands on — while distinct devices share
// no mutable state (the events database is frozen, filters are per-device),
// so their schedules commute. Second, every per-conversion output lands in
// an index-addressed slot and the aggregate stage folds the slots in
// conversion order, so float accumulation order never depends on the
// schedule. Report generation itself draws no randomness; the run's noise
// streams (stats.Stream) are consumed only by the sequential aggregate
// stage, in query order.

// convOutput is one conversion's generate-stage result. The fold-relevant
// diagnostics arrive pre-reduced as core.ReportStats (per-worker scratch
// reuse means no full Diagnostics is materialized on the hot path).
type convOutput struct {
	report *core.Report
	stats  core.ReportStats
	truth  float64 // IPA-like path: the true report value
}

// generateReports runs the generate stage for one on-device batch via the
// shared device-grouped loop (stream.Generator, reused across the run's
// batches), outputs slotted by conversion index. A malformed request
// surfaces as an error instead of panicking a worker mid-batch.
func (r *Run) generateReports(reqs []*core.Request, batch []events.Event) ([]convOutput, error) {
	reports, stats, err := r.gen.Generate(r.fleet, reqs, batch, r.Config.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]convOutput, len(batch))
	for i := range out {
		out[i] = convOutput{report: reports[i], stats: stats[i]}
	}
	return out, nil
}

// trueValues runs the generate stage for one IPA-like batch: the central
// system computes every conversion's true report value from the full data.
func (r *Run) trueValues(reqs []*core.Request, batch []events.Event) []convOutput {
	truths := stream.TrueValues(r.db, reqs, batch, r.Config.Parallelism)
	out := make([]convOutput, len(batch))
	for i := range out {
		out[i].truth = truths[i]
	}
	return out
}
