package workload

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
)

// This file is the generate stage of the plan→generate→aggregate pipeline:
// per-conversion report generation fanned out across a bounded worker pool.
//
// Determinism contract: Run results are bit-identical for every Parallelism
// value. Two properties make that hold. First, work is partitioned by
// device — a device's conversions within a batch execute sequentially in
// batch order, because they contend for the same privacy filters and the
// order decides which epoch a denial lands on — while distinct devices share
// no mutable state (the events database is frozen, filters are per-device),
// so their schedules commute. Second, every per-conversion output lands in
// an index-addressed slot and the aggregate stage folds the slots in
// conversion order, so float accumulation order never depends on the
// schedule. Report generation itself draws no randomness; the run's noise
// streams (stats.Stream) are consumed only by the sequential aggregate
// stage, in query order.

// convOutput is one conversion's generate-stage result.
type convOutput struct {
	report *core.Report
	diag   *core.Diagnostics
	truth  float64 // IPA-like path: the true report value
}

// fanOut runs fn(job) for jobs [0, n) on up to workers goroutines, pulling
// jobs from an atomic queue. It propagates the first panic to the caller and
// returns once every job finished.
func fanOut(n, workers int, fn func(job int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for job := 0; job < n; job++ {
			fn(job)
		}
		return
	}
	var next atomic.Int64
	var panicMu sync.Mutex
	var panicked any
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				job := int(next.Add(1)) - 1
				if job >= n {
					return
				}
				fn(job)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// groupByDevice partitions batch indices by device, groups ordered by first
// appearance and each group preserving batch order — the unit of parallel
// work that keeps same-device filter operations sequential.
func groupByDevice(batch []events.Event) [][]int {
	order := make(map[events.DeviceID]int, len(batch))
	var groups [][]int
	for i, conv := range batch {
		g, ok := order[conv.Device]
		if !ok {
			g = len(groups)
			order[conv.Device] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}
	return groups
}

// generateReports runs the generate stage for one on-device batch: every
// conversion's GenerateReport, fanned out device-wise across the worker
// pool, outputs slotted by conversion index.
func (r *Run) generateReports(reqs []*core.Request, batch []events.Event) []convOutput {
	out := make([]convOutput, len(batch))
	groups := groupByDevice(batch)
	fanOut(len(groups), r.Config.Parallelism, func(g int) {
		for _, i := range groups[g] {
			dev := r.fleet.GetOrCreate(batch[i].Device)
			rep, diag, err := dev.GenerateReport(reqs[i])
			if err != nil {
				panic("workload: internal request invalid: " + err.Error())
			}
			out[i] = convOutput{report: rep, diag: diag}
		}
	})
	return out
}

// trueValues runs the generate stage for one IPA-like batch: the central
// system computes every conversion's true report value from the full data.
// The reads are side-effect free, so the fan-out needs no device grouping.
func (r *Run) trueValues(reqs []*core.Request, batch []events.Event) []convOutput {
	out := make([]convOutput, len(batch))
	fanOut(len(batch), r.Config.Parallelism, func(i int) {
		out[i].truth = core.TrueReportValue(r.db, batch[i].Device, reqs[i])
	})
	return out
}
