package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
)

// CanonicalDigest returns a SHA-256 over a canonical serialization of
// everything the equivalence contract compares: every QueryResult field
// (floats as IEEE-754 bit patterns, NaN normalized) plus the post-run budget
// metrics the experiment harnesses read. Two runs have equal digests exactly
// when the equivalence suite's result and metric comparisons would pass, so
// a committed digest (testdata/golden/) stands in for recomputing the batch
// reference.
func (r *Run) CanonicalDigest() string {
	h := sha256.New()
	for _, res := range r.Results {
		fmt.Fprintf(h, "result|%s|%s|%d|%d|%t|%d|%d|",
			res.Querier, res.Product, res.Index, res.Batch, res.Executed,
			res.DeniedReports, res.BiasedReports)
		writeFloat(h, res.Epsilon)
		writeFloat(h, res.Truth)
		writeFloat(h, res.Estimate)
		writeFloat(h, res.RMSRE)
		writeFloat(h, res.BiasEstimate)
		fmt.Fprintf(h, "%d|%d|", res.FirstEpoch, res.LastEpoch)
		writeFloat(h, res.avgBudgetAfter)
		io.WriteString(h, "\n")
	}
	avg, max := r.BudgetStats()
	io.WriteString(h, "metrics|")
	writeFloat(h, avg)
	writeFloat(h, max)
	writeFloat(h, r.PopulationAvgBudget())
	writeFloat(h, r.ExecutedFraction())
	fmt.Fprintf(h, "%d|", r.RequestedDeviceEpochs())
	io.WriteString(h, "\npairs|")
	for _, v := range r.PerPairAverages() {
		writeFloat(h, v)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeFloat serializes one float bit-exactly. NaN is normalized to a single
// token: hardware NaN payloads are not specified cross-platform, and the
// equivalence comparisons treat all NaNs as equal anyway.
func writeFloat(w io.Writer, v float64) {
	if math.IsNaN(v) {
		io.WriteString(w, "nan|")
		return
	}
	fmt.Fprintf(w, "%016x|", math.Float64bits(v))
}
