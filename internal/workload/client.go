package workload

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/stream"
)

// This file is the thin-client face of the online measurement service: the
// scenario vocabulary (Config, System, QueryResult, Run and its metrics)
// stays here, while internal/stream owns ingestion, day-clocked scheduling
// and multiplexed execution. ExecuteStream translates a workload
// configuration into a service configuration, drives the service over the
// dataset's event stream, and folds the service's run back into the same
// Run type the batch engine produces — so every experiment harness and
// metric works identically in either mode.
//
// Execute (run.go) remains the batch *specification*: an independent
// implementation that materializes the trace, plans globally, and executes
// query by query. The streaming service is held equivalent to it bit for
// bit by the tests in internal/stream.

// ExecuteStream runs the full workload under cfg through the streaming
// service, ingesting the dataset as a day-ordered event stream instead of
// materializing it. Results are bit-identical to Execute for the same
// configuration, at any Parallelism.
func ExecuteStream(cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return ExecuteSource(cfg, cfg.Dataset.Stream())
}

// ExecuteSource runs the workload's scenario over an arbitrary event
// source — a materialized dataset's stream, or a generator-backed source
// whose trace is never held in memory. The scenario's population, duration
// and advertisers come from the source's metadata; a nil cfg.Dataset is
// replaced by a metadata-only view of them so the returned Run's metrics
// (population averages, per-pair CDFs) work without an event log.
func ExecuteSource(cfg Config, src dataset.Source) (*Run, error) {
	if cfg.Dataset == nil {
		m := src.Meta()
		cfg.Dataset = &dataset.Dataset{
			Name:              m.Name,
			PopulationDevices: m.PopulationDevices,
			DurationDays:      m.DurationDays,
			Advertisers:       m.Advertisers,
		}
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scfg := stream.Config{
		Source:               src,
		EpochDays:            cfg.EpochDays,
		WindowDays:           cfg.WindowDays,
		EpsilonG:             cfg.EpsilonG,
		Calibration:          cfg.Calibration,
		FixedEpsilon:         cfg.FixedEpsilon,
		Bias:                 cfg.Bias,
		Seed:                 cfg.Seed,
		Parallelism:          cfg.Parallelism,
		MaxQueriesPerProduct: cfg.MaxQueriesPerProduct,
		CheckpointDir:        cfg.CheckpointDir,
		SnapshotEveryDays:    cfg.SnapshotEveryDays,
		SnapshotMode:         cfg.SnapshotMode,
		BaseEveryDeltas:      cfg.BaseEveryDeltas,
		KeepGenerations:      cfg.KeepGenerations,
		GroupCommitEvents:    cfg.GroupCommitEvents,
		GroupCommitBytes:     cfg.GroupCommitBytes,
		DurableFS:            cfg.DurableFS,
		FaultHook:            cfg.FaultHook,
		AdmitObserver:        cfg.AdmitObserver,
		ResultObserver:       cfg.ResultObserver,
		LiveSource:           cfg.LiveSource,
	}
	if cfg.DropLate {
		scfg.LatePolicy = stream.LateDrop
	}
	switch cfg.System {
	case IPALike:
		scfg.Central = true
	default:
		scfg.Policy = cfg.PolicyOverride
		if scfg.Policy == nil && cfg.System == ARALike {
			scfg.Policy = core.ARALikePolicy{}
		}
		// CookieMonster is the service's default policy.
	}
	var svc *stream.Service
	var err error
	if cfg.Resume {
		// Recovery: restore the checkpoint directory's durable state, then
		// continue from the source as if never interrupted.
		svc, err = stream.ResumeFrom(scfg, cfg.CheckpointDir)
	} else {
		svc, err = stream.New(scfg)
	}
	if err != nil {
		return nil, err
	}
	srun, err := svc.Serve()
	if err != nil {
		return nil, err
	}
	return RunFromStream(cfg, srun), nil
}

// RunFromStream folds a completed streaming run into the workload's Run
// shape, field by field, preserving bit-identity with the batch engine.
// The serving layer uses it to fold a network-fed service's run into the
// same digestable shape every in-process run produces.
func RunFromStream(cfg Config, srun *stream.Run) *Run {
	r := &Run{
		Config:         cfg,
		TotalEpochs:    srun.TotalEpochs,
		EventsIngested: srun.EventsIngested,
		EventsDropped:  srun.EventsDropped,
		Durability:     srun.Durability,
		MaxQueueDelay:  srun.MaxQueueDelay,
		AvgQueueDelay:  srun.AvgQueueDelay,
		fleet:          srun.Fleet,
		totalConsumed:  srun.TotalConsumed,
		firstSpanEpoch: srun.FirstSpanEpoch,
		lastSpanEpoch:  srun.LastSpanEpoch,
		requested:      make(map[devEpoch]map[events.Site]struct{}, len(srun.Requested)),
		central:        srun.Central,
	}
	for key, queriers := range srun.Requested {
		r.requested[devEpoch{key.Device, key.Epoch}] = queriers
	}
	r.Results = make([]QueryResult, len(srun.Results))
	for i, sr := range srun.Results {
		r.Results[i] = QueryResult{
			Querier:        sr.Querier,
			Product:        sr.Product,
			Index:          sr.Index,
			Batch:          sr.Batch,
			Epsilon:        sr.Epsilon,
			Executed:       sr.Executed,
			Truth:          sr.Truth,
			Estimate:       sr.Estimate,
			RMSRE:          sr.RMSRE,
			DeniedReports:  sr.DeniedReports,
			BiasedReports:  sr.BiasedReports,
			BiasEstimate:   sr.BiasEstimate,
			FirstEpoch:     sr.FirstEpoch,
			LastEpoch:      sr.LastEpoch,
			avgBudgetAfter: sr.AvgBudgetAfter,
		}
	}
	return r
}
