package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// smallMicro builds a fast microbenchmark dataset for tests.
func smallMicro(t *testing.T, knob1, knob2 float64) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultMicroConfig()
	cfg.BatchSize = 100
	cfg.Knob1 = knob1
	cfg.Knob2 = knob2
	ds, err := dataset.Micro(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func execute(t *testing.T, cfg Config) *Run {
	t.Helper()
	r, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExecuteRunsAllQueriesOnDevice(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	for _, sys := range []System{CookieMonster, ARALike} {
		r := execute(t, Config{Dataset: ds, System: sys, EpsilonG: 5, Seed: 1})
		if len(r.Results) != 20 {
			t.Fatalf("%v: %d queries, want 20", sys, len(r.Results))
		}
		if r.ExecutedFraction() != 1 {
			t.Fatalf("%v: on-device system rejected queries", sys)
		}
		for _, res := range r.Results {
			if res.Batch != 100 {
				t.Fatalf("%v: batch = %d", sys, res.Batch)
			}
			if res.Truth < 0 {
				t.Fatalf("%v: negative truth", sys)
			}
		}
	}
}

func TestQueriesOrderedByFireDay(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1})
	for i, res := range r.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
	}
}

func TestCookieMonsterConsumesLessThanARA(t *testing.T) {
	// The headline Q1 result: same workload, CM's average budget is
	// strictly below ARA-like's, which is below IPA-like's.
	ds := smallMicro(t, 0.1, 0.1)
	avgs := make(map[System]float64)
	for _, sys := range Systems {
		r := execute(t, Config{Dataset: ds, System: sys, EpsilonG: 5, Seed: 1, FixedEpsilon: 1})
		avg, max := r.BudgetStats()
		if avg < 0 || max < avg {
			t.Fatalf("%v: avg=%v max=%v inconsistent", sys, avg, max)
		}
		avgs[sys] = avg
	}
	if !(avgs[CookieMonster] < avgs[ARALike]) {
		t.Fatalf("CM avg %v !< ARA avg %v", avgs[CookieMonster], avgs[ARALike])
	}
	if !(avgs[ARALike] < avgs[IPALike]) {
		t.Fatalf("ARA avg %v !< IPA avg %v", avgs[ARALike], avgs[IPALike])
	}
}

func TestIPARejectsUnderHeavyLoad(t *testing.T) {
	// With a tiny capacity, IPA-like must reject some queries while the
	// on-device systems still execute everything.
	ds := smallMicro(t, 0.1, 0.1)
	ipa := execute(t, Config{Dataset: ds, System: IPALike, EpsilonG: 0.5, Seed: 1})
	if ipa.ExecutedFraction() >= 1 {
		t.Fatal("IPA executed everything under tiny capacity")
	}
	cm := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 0.5, Seed: 1})
	if cm.ExecutedFraction() != 1 {
		t.Fatal("CM rejected queries")
	}
	// IPA's executed queries stay accurate (it never nullifies reports).
	for _, res := range ipa.Results {
		if res.Executed && res.Truth > 0 && res.RMSRE > 0.5 {
			t.Fatalf("IPA executed query has RMSRE %v", res.RMSRE)
		}
	}
}

func TestEstimatesTrackTruth(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.5) // dense impressions: high attribution
	r := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 50, Seed: 1})
	for _, res := range r.Results {
		if res.Truth == 0 {
			continue
		}
		if res.RMSRE > 1.0 {
			t.Fatalf("query %d: estimate %v vs truth %v (RMSRE %v)",
				res.Index, res.Estimate, res.Truth, res.RMSRE)
		}
	}
}

func TestARAMoreBiasedThanCM(t *testing.T) {
	// Under budget pressure ARA-like nullifies more reports than CM.
	ds := smallMicro(t, 1.0, 0.1) // heavy per-device load
	cm := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 2, Seed: 1})
	ara := execute(t, Config{Dataset: ds, System: ARALike, EpsilonG: 2, Seed: 1})
	cmDenied, araDenied := 0, 0
	for i := range cm.Results {
		cmDenied += cm.Results[i].DeniedReports
		araDenied += ara.Results[i].DeniedReports
	}
	if !(cmDenied < araDenied) {
		t.Fatalf("CM denied %d !< ARA denied %d", cmDenied, araDenied)
	}
}

func TestBiasMeasurementProducesEstimates(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 2, Seed: 1,
		Bias: &core.BiasSpec{LastTouch: true},
	})
	for _, res := range r.Results {
		if res.BiasEstimate <= 0 {
			t.Fatalf("query %d: no bias estimate", res.Index)
		}
	}
}

func TestBiasMeasurementCostsBudget(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	plain := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1})
	withBias := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1,
		Bias: &core.BiasSpec{LastTouch: true},
	})
	a1, _ := plain.BudgetStats()
	a2, _ := withBias.BudgetStats()
	if !(a2 > a1) {
		t.Fatalf("bias measurement avg %v !> plain avg %v", a2, a1)
	}
}

func TestFixedEpsilonOverridesCalibration(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1,
		FixedEpsilon: 0.123,
	})
	for _, res := range r.Results {
		if res.Epsilon != 0.123 {
			t.Fatalf("epsilon = %v, want fixed 0.123", res.Epsilon)
		}
	}
}

func TestMaxQueriesPerProduct(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1,
		MaxQueriesPerProduct: 1,
	})
	if len(r.Results) != 10 {
		t.Fatalf("%d queries, want 10 (one per product)", len(r.Results))
	}
}

func TestTrackCumulativeMonotone(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{
		Dataset: ds, System: ARALike, EpsilonG: 5, Seed: 1,
		FixedEpsilon: 1,
	})
	series := r.CumulativeAvgBudget()
	if len(series) != len(r.Results) {
		t.Fatalf("series length %d", len(series))
	}
	if series[len(series)-1] <= 0 {
		t.Fatal("final cumulative budget is zero")
	}
	// The final snapshot equals the run's final population average, and
	// the series is monotone (filters only fill).
	if math.Abs(series[len(series)-1]-r.PopulationAvgBudget()) > 1e-9 {
		t.Fatalf("final snapshot %v != population avg %v",
			series[len(series)-1], r.PopulationAvgBudget())
	}
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1]-1e-12 {
			t.Fatalf("cumulative series decreased at %d", i)
		}
	}
}

func TestPerPairAveragesShape(t *testing.T) {
	ds := smallMicro(t, 0.5, 0.1)
	for _, sys := range Systems {
		r := execute(t, Config{Dataset: ds, System: sys, EpsilonG: 5, Seed: 1})
		vals := r.PerPairAverages()
		want := ds.PopulationDevices * len(ds.Advertisers)
		if len(vals) != want {
			t.Fatalf("%v: %d pairs, want %d", sys, len(vals), want)
		}
		for _, v := range vals {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%v: bad pair value %v", sys, v)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Execute(Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds := smallMicro(t, 0.1, 0.1)
	if _, err := Execute(Config{Dataset: ds, FixedEpsilon: -1}); err == nil {
		t.Fatal("negative fixed epsilon accepted")
	}
}

func TestSystemString(t *testing.T) {
	if CookieMonster.String() != "cookie-monster" || ARALike.String() != "ara-like" ||
		IPALike.String() != "ipa-like" || System(9).String() != "System(9)" {
		t.Fatal("System.String wrong")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	a := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 7})
	b := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 7})
	for i := range a.Results {
		if a.Results[i].Estimate != b.Results[i].Estimate {
			t.Fatalf("query %d estimates differ: %v vs %v",
				i, a.Results[i].Estimate, b.Results[i].Estimate)
		}
	}
}

func TestWindowDaysControlsAttribution(t *testing.T) {
	// A shorter attribution window must find no more attributed value
	// than a longer one.
	ds := smallMicro(t, 0.1, 0.2)
	short := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 50, WindowDays: 3, Seed: 1})
	long := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 50, WindowDays: 30, Seed: 1})
	shortTruth, longTruth := 0.0, 0.0
	for i := range short.Results {
		shortTruth += short.Results[i].Truth
		longTruth += long.Results[i].Truth
	}
	if shortTruth > longTruth+1e-9 {
		t.Fatalf("3-day window attributed %v > 30-day window %v", shortTruth, longTruth)
	}
	if shortTruth == longTruth {
		t.Fatal("window length had no effect; dataset too dense to test")
	}
}

func TestEpochSpanCoversWindows(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1})
	// Every query's window must fit inside the declared span.
	span := r.EpochSpan()
	if span <= r.TotalEpochs {
		t.Fatalf("span %d should exceed trace epochs %d (windows reach back)", span, r.TotalEpochs)
	}
	for _, q := range r.Results {
		if int(q.LastEpoch-q.FirstEpoch)+1 > span {
			t.Fatalf("query window [%d,%d] exceeds span %d", q.FirstEpoch, q.LastEpoch, span)
		}
	}
}

func TestPolicyOverride(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1,
		FixedEpsilon:   1,
		PolicyOverride: core.ZeroLossOnlyPolicy{},
	})
	full := execute(t, Config{
		Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1,
		FixedEpsilon: 1,
	})
	avgOverride, _ := r.BudgetStats()
	avgFull, _ := full.BudgetStats()
	// Zero-loss-only charges more than full Cookie Monster.
	if !(avgOverride > avgFull) {
		t.Fatalf("override %v !> full %v", avgOverride, avgFull)
	}
}

func TestRequestedDeviceEpochsAndActiveDevices(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	r := execute(t, Config{Dataset: ds, System: CookieMonster, EpsilonG: 5, Seed: 1})
	if r.ActiveDevices() == 0 {
		t.Fatal("no active devices")
	}
	if r.RequestedDeviceEpochs() < r.ActiveDevices() {
		t.Fatal("fewer requested device-epochs than active devices")
	}
}
