// Package workload enacts the paper's scenario-driven methodology (§6.1):
// advertisers observe conversions, request attribution reports over an
// attribution window with last-touch attribution, accumulate fixed-size
// batches, and run repeated single-advertiser summation queries through the
// trusted aggregation service, with the privacy budget ε calibrated for 5%
// error at 99% confidence. It runs the same workload under the three systems
// the evaluation compares — Cookie Monster, ARA-like (on-device) and
// IPA-like (off-device) — and collects the budget-consumption and
// query-accuracy metrics behind Figs. 4–7.
package workload

import (
	"fmt"
	"runtime"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
	"repro/internal/stream"
)

// System selects the budgeting system under test.
type System int

const (
	// CookieMonster is on-device budgeting with all IDP optimizations.
	CookieMonster System = iota
	// ARALike is on-device budgeting with only the inherent optimization
	// (participating devices pay full ε per window epoch).
	ARALike
	// IPALike is off-device (centralized) budgeting: one filter per
	// (querier, epoch) for the whole population; queries are rejected
	// when budget runs out.
	IPALike
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case CookieMonster:
		return "cookie-monster"
	case ARALike:
		return "ara-like"
	case IPALike:
		return "ipa-like"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all three, in the order the paper's figures plot them.
var Systems = []System{CookieMonster, ARALike, IPALike}

// Config parameterizes one workload run.
type Config struct {
	// Dataset is the generated workload.
	Dataset *dataset.Dataset
	// System selects the budgeting system.
	System System
	// EpochDays is the on-device epoch length (7 by default).
	EpochDays int
	// WindowDays is the attribution window (30 by default).
	WindowDays int
	// EpsilonG is the per-epoch budget capacity ε^G (per querier, per
	// device for on-device systems; per querier population-wide for
	// IPA-like).
	EpsilonG float64
	// Calibration derives each advertiser's requested ε from its batch
	// size and c̃ estimate. Ignored when FixedEpsilon > 0.
	Calibration privacy.Calibration
	// FixedEpsilon, when positive, uses the same requested ε for every
	// query. The knob sweeps of Fig. 4 use this so the budget curves
	// reflect data shape only.
	FixedEpsilon float64
	// Bias, when non-nil, runs the Appendix F side query with every
	// report (Fig. 7). Kappa ≤ 0 selects the paper's default of 10% of
	// each advertiser's query sensitivity.
	Bias *core.BiasSpec
	// Seed drives the aggregation noise.
	Seed uint64
	// Parallelism bounds the worker pool that fans each batch's
	// per-conversion report generation out across devices. 0 (the
	// default) selects GOMAXPROCS; 1 runs fully sequentially. Results
	// are bit-identical for every value — see pipeline.go for the
	// determinism contract.
	Parallelism int
	// MaxQueriesPerProduct truncates each product's query schedule
	// (0 = run every full batch).
	MaxQueriesPerProduct int
	// PolicyOverride substitutes a custom on-device loss policy (the
	// ablation experiments use the partial policies of core's ablation
	// ladder). Ignored for IPA-like. When nil, System picks the policy.
	PolicyOverride core.LossPolicy

	// DropLate selects the streaming service's drop-with-counter admission
	// policy (stream.LateDrop) for events whose day has already closed:
	// they are dropped and counted in Run.EventsDropped instead of
	// aborting the run. The batch engine has no arrival clock — it plans
	// over a materialized trace — so batch runs ignore this knob; the
	// hostile-traffic equivalence harness (internal/scenario) compares a
	// DropLate streaming run against a batch run over the pre-filtered
	// accepted event set.
	DropLate bool

	// CheckpointDir enables the streaming service's crash safety: a
	// write-ahead log of ingested events plus periodic snapshots in this
	// directory (DESIGN.md §8). Streaming mode only; ignored by the batch
	// engine, which is not a long-running service.
	CheckpointDir string
	// SnapshotEveryDays sets the snapshot cadence inside CheckpointDir
	// (0 = WAL only, with snapshots at run start/end).
	SnapshotEveryDays int
	// SnapshotMode selects the cadence snapshot representation —
	// stream.SnapshotModeDelta (dirty state chained by fingerprint, the
	// default) or stream.SnapshotModeFull. Restores are bit-identical
	// either way.
	SnapshotMode string
	// BaseEveryDeltas folds the delta chain into a fresh base after this
	// many deltas (0 = the stream default). Ignored in full mode.
	BaseEveryDeltas int
	// KeepGenerations retains the newest K intact snapshot generations at
	// GC time (0 = the stream default).
	KeepGenerations int
	// GroupCommitEvents and GroupCommitBytes batch WAL fsyncs into group
	// commits once either threshold trips (0 = sync only at day boundaries
	// and snapshot rotations).
	GroupCommitEvents int
	GroupCommitBytes  int
	// DurableFS overrides the filesystem under the checkpoint store — the
	// disk-fault injection seam (checkpoint.NewFaultFS). nil selects the
	// real filesystem.
	DurableFS checkpoint.FS
	// Resume restarts a crashed streaming run from CheckpointDir's durable
	// state instead of starting fresh. The resumed run's results are
	// bit-identical to an uninterrupted run of the same configuration.
	Resume bool
	// FaultHook is the streaming service's crash-injection seam (test
	// instrumentation; see stream.FaultPoint). Nil in production.
	FaultHook stream.FaultHook

	// AdmitObserver and ResultObserver are the streaming service's
	// execution-only observation hooks (see stream.Config): the serving
	// layer (internal/serve) uses them to acknowledge requests once their
	// events are WAL-logged and applied, rebuild its per-device dedupe
	// cursors across recovery, and buffer released results for polling.
	// Streaming mode only; never part of the equivalence digests.
	AdmitObserver  func(ev events.Event, dropped bool)
	ResultObserver func(res stream.Result)
	// LiveSource marks the source handed to ExecuteSource as an
	// admission-filtered live feed: a resumed run must not skip a source
	// prefix by count, because the feed only delivers events the durable
	// state does not cover. Streaming mode only.
	LiveSource bool
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.EpochDays == 0 {
		c.EpochDays = 7
	}
	if c.WindowDays == 0 {
		c.WindowDays = 30
	}
	if c.EpsilonG == 0 {
		c.EpsilonG = 1
	}
	if c.Calibration == (privacy.Calibration{}) {
		c.Calibration = privacy.DefaultCalibration
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Dataset == nil:
		return fmt.Errorf("workload: nil dataset")
	case c.EpochDays <= 0 || c.WindowDays <= 0:
		return fmt.Errorf("workload: non-positive epoch or window length")
	case c.EpsilonG < 0:
		return fmt.Errorf("workload: negative capacity")
	case c.FixedEpsilon < 0:
		return fmt.Errorf("workload: negative fixed epsilon")
	case c.Parallelism < 0:
		return fmt.Errorf("workload: negative parallelism")
	case c.SnapshotEveryDays < 0:
		return fmt.Errorf("workload: negative snapshot cadence")
	case (c.Resume || c.SnapshotEveryDays > 0) && c.CheckpointDir == "":
		return fmt.Errorf("workload: resume/snapshot cadence without a checkpoint directory")
	}
	return nil
}

// QueryResult records one summation query's outcome.
type QueryResult struct {
	// Querier and Product identify the query stream.
	Querier events.Site
	Product string
	// Index is the query's global position in submission order (0-based).
	Index int
	// Batch is the number of reports aggregated (B).
	Batch int
	// Epsilon is the requested privacy parameter.
	Epsilon float64
	// Executed is false when IPA-like rejected the query for lack of
	// budget (on-device systems always execute).
	Executed bool
	// Truth is the unbiased, noise-free query value Q(D).
	Truth float64
	// Estimate is the released noisy value M(D) (undefined when not
	// executed).
	Estimate float64
	// RMSRE is the realized relative error |M−Q|/|Q| of this query.
	RMSRE float64
	// DeniedReports counts reports with at least one budget-denied epoch.
	DeniedReports int
	// BiasedReports counts reports whose value actually changed due to
	// denials.
	BiasedReports int
	// BiasEstimate is the querier-side RMSRE upper bound from the side
	// query (0 when bias measurement is off).
	BiasEstimate float64
	// FirstEpoch and LastEpoch delimit the union of the batch's windows.
	FirstEpoch, LastEpoch events.Epoch

	// avgBudgetAfter snapshots the population-average budget right after
	// this query (the Fig. 5a series).
	avgBudgetAfter float64
}

// devEpoch identifies a requested device-epoch.
type devEpoch struct {
	d events.DeviceID
	e events.Epoch
}

// queryPlan is one batch awaiting execution.
type queryPlan struct {
	advertiser dataset.Advertiser
	product    string
	batch      []events.Event // the B conversions, time-ordered
	fireDay    int            // day the batch filled
	seq        int            // chunk index within the stream (sort tie-break)
	epsilon    float64
}
