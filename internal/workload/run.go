package workload

import (
	"math"
	"sort"
	"time"

	"repro/internal/aggregation"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/events"
	"repro/internal/privacy"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Run is a completed workload execution with everything the experiment
// harnesses need: per-query results plus the budget state of every filter in
// the system.
type Run struct {
	Config  Config
	Results []QueryResult
	// TotalEpochs is the number of epochs the trace spans.
	TotalEpochs int
	// EventsIngested counts the events the engine consumed: the whole
	// trace for batch runs, events drained from the source (accepted and
	// dropped alike) for streaming runs.
	EventsIngested int
	// EventsDropped counts late events dropped at admission by a
	// streaming run under Config.DropLate (always 0 for batch runs, whose
	// materialized trace has no arrival order to violate).
	EventsDropped int
	// Durability is the streaming run's checkpoint/WAL telemetry (zero
	// for batch runs and for streaming runs without a checkpoint
	// directory). Observability only — never part of CanonicalDigest.
	Durability stream.DurabilityStats
	// MaxQueueDelay and AvgQueueDelay are the streaming run's ingest-queue
	// sojourn telemetry (zero for batch runs) — the overload signal the
	// serving layer's shedding gate reads. Observability only.
	MaxQueueDelay time.Duration
	AvgQueueDelay time.Duration

	db        *events.Database
	fleet     *core.Fleet
	central   *budget.IPALike
	requested map[devEpoch]map[events.Site]struct{}
	ipaNoise  *stats.RNG
	// gen is the generate stage's reusable state (grouping scratch,
	// per-worker workspaces), shared by every batch of the run.
	gen stream.Generator
	// totalConsumed is the running sum of consumed privacy loss across
	// all device-epochs (for IPA-like, central consumption is charged to
	// every device in the population).
	totalConsumed float64
	// firstSpanEpoch/lastSpanEpoch delimit every epoch a query window can
	// touch: attribution windows of early conversions reach back before
	// the trace, so the span is wider than the trace's own epochs.
	firstSpanEpoch, lastSpanEpoch events.Epoch
}

// Execute runs the full workload under cfg and returns the collected run.
// Queries execute sequentially in schedule order (their noise draws come
// from the run's seeded streams), but within each batch the per-conversion
// report generation fans out across cfg.Parallelism workers over the
// sharded device fleet; results are bit-identical for any worker count.
func Execute(cfg Config) (*Run, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Run{
		Config:         cfg,
		TotalEpochs:    cfg.Dataset.Epochs(cfg.EpochDays),
		EventsIngested: len(cfg.Dataset.Events),
		db:             cfg.Dataset.Build(cfg.EpochDays),
		requested:      make(map[devEpoch]map[events.Site]struct{}),
	}
	policy := cfg.PolicyOverride
	if policy == nil {
		if cfg.System == ARALike {
			policy = core.ARALikePolicy{}
		} else {
			policy = core.CookieMonsterPolicy{}
		}
	}
	db, epsG := r.db, cfg.EpsilonG
	r.fleet = core.NewFleet(0, func(id events.DeviceID) *core.Device {
		return core.NewDevice(id, db, epsG, policy)
	})
	r.firstSpanEpoch = events.EpochOfDay(1-cfg.WindowDays, cfg.EpochDays)
	r.lastSpanEpoch = events.EpochOfDay(cfg.Dataset.DurationDays-1, cfg.EpochDays)
	if r.lastSpanEpoch < r.firstSpanEpoch {
		r.lastSpanEpoch = r.firstSpanEpoch
	}
	if cfg.System == IPALike {
		r.central = budget.NewIPALike(cfg.EpsilonG)
		r.ipaNoise = stats.Stream(cfg.Seed, "ipa-noise")
	}

	service := aggregation.NewService(stats.Stream(cfg.Seed, "aggregation-noise"))
	plans := r.plan()
	for i, p := range plans {
		res, err := r.executeQuery(service, p)
		if err != nil {
			return nil, err
		}
		res.Index = i
		res.avgBudgetAfter = r.PopulationAvgBudget()
		r.Results = append(r.Results, res)
	}
	return r, nil
}

// plan groups each advertiser's conversions per product into time-ordered
// batches of B and schedules the resulting queries by the day their batch
// filled, reproducing the paper's "once B reports are gathered, Nike runs
// its query" loop.
func (r *Run) plan() []queryPlan {
	type stream struct {
		site    events.Site
		product string
	}
	byStream := make(map[stream][]events.Event)
	advBySite := make(map[events.Site]dataset.Advertiser, len(r.Config.Dataset.Advertisers))
	for _, adv := range r.Config.Dataset.Advertisers {
		advBySite[adv.Site] = adv
	}
	for _, ev := range r.Config.Dataset.Events {
		if !ev.IsConversion() {
			continue
		}
		if _, ok := advBySite[ev.Advertiser]; !ok {
			continue // not a queryable advertiser
		}
		key := stream{ev.Advertiser, ev.Product}
		byStream[key] = append(byStream[key], ev)
	}

	var plans []queryPlan
	for key, convs := range byStream {
		adv := advBySite[key.site]
		sort.Slice(convs, func(i, j int) bool { return convs[i].Before(convs[j]) })
		eps := r.Config.FixedEpsilon
		if eps <= 0 {
			eps = r.Config.Calibration.Epsilon(
				adv.MaxValue, adv.BatchSize, adv.AvgReportValue)
		}
		b := adv.BatchSize
		max := len(convs) / b
		if r.Config.MaxQueriesPerProduct > 0 && max > r.Config.MaxQueriesPerProduct {
			max = r.Config.MaxQueriesPerProduct
		}
		for q := 0; q < max; q++ {
			chunk := convs[q*b : (q+1)*b]
			plans = append(plans, queryPlan{
				advertiser: adv,
				product:    key.product,
				batch:      chunk,
				fireDay:    chunk[len(chunk)-1].Day,
				seq:        q,
				epsilon:    eps,
			})
		}
	}
	// The key (fireDay, site, product, seq) is total, so the schedule is
	// independent of map iteration order.
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].fireDay != plans[j].fireDay {
			return plans[i].fireDay < plans[j].fireDay
		}
		if plans[i].advertiser.Site != plans[j].advertiser.Site {
			return plans[i].advertiser.Site < plans[j].advertiser.Site
		}
		if plans[i].product != plans[j].product {
			return plans[i].product < plans[j].product
		}
		return plans[i].seq < plans[j].seq
	})
	return plans
}

// request builds the attribution request for one conversion. The
// construction is shared with the streaming executor (stream.BuildRequest):
// it defines report content, so bit-equivalence between modes requires a
// single copy.
func (r *Run) request(adv dataset.Advertiser, product string, conv events.Event, eps float64) *core.Request {
	return stream.BuildRequest(adv, product, conv, eps,
		r.Config.WindowDays, r.Config.EpochDays, r.Config.Bias)
}

// markRequested records the device-epochs a report's window touches, for the
// Fig. 4 budget denominators.
func (r *Run) markRequested(dev events.DeviceID, q events.Site, first, last events.Epoch) {
	for e := first; e <= last; e++ {
		key := devEpoch{dev, e}
		m := r.requested[key]
		if m == nil {
			m = make(map[events.Site]struct{}, 1)
			r.requested[key] = m
		}
		m[q] = struct{}{}
	}
}

// executeQuery runs one batch through the three pipeline stages: prepare
// (build every conversion's request, sequentially — it mutates the
// requested-epoch accounting), generate (fan report generation out across
// the worker pool; see pipeline.go), aggregate (fold per-conversion outputs
// in conversion order and release the noisy result). A malformed request in
// the generate stage aborts the run with an error.
func (r *Run) executeQuery(service *aggregation.Service, p queryPlan) (QueryResult, error) {
	res := QueryResult{
		Querier: p.advertiser.Site,
		Product: p.product,
		Batch:   len(p.batch),
		Epsilon: p.epsilon,
	}
	first, last := events.EpochWindow(p.batch[0].Day, r.Config.WindowDays, r.Config.EpochDays)
	res.FirstEpoch, res.LastEpoch = first, last

	// Stage 1: prepare. Requests are pure values; the requested-epoch
	// bookkeeping and window widening stay on the coordinator.
	reqs := make([]*core.Request, len(p.batch))
	for i, conv := range p.batch {
		req := r.request(p.advertiser, p.product, conv, p.epsilon)
		reqs[i] = req
		r.markRequested(conv.Device, p.advertiser.Site, req.FirstEpoch, req.LastEpoch)
		if req.FirstEpoch < res.FirstEpoch {
			res.FirstEpoch = req.FirstEpoch
		}
		if req.LastEpoch > res.LastEpoch {
			res.LastEpoch = req.LastEpoch
		}
	}

	switch r.Config.System {
	case CookieMonster, ARALike:
		// Stage 2: generate reports on-device, in parallel.
		outputs, err := r.generateReports(reqs, p.batch)
		if err != nil {
			return res, err
		}

		// Stage 3: aggregate. Per-conversion outputs fold in
		// conversion order, so sums are schedule-independent.
		reports := make([]*core.Report, len(outputs))
		for i := range outputs {
			st := outputs[i].stats
			res.Truth += st.TruthTotal
			r.totalConsumed += st.TotalLoss
			if st.Denied {
				res.DeniedReports++
			}
			if st.Biased {
				res.BiasedReports++
			}
			reports[i] = outputs[i].report
		}
		out, err := service.Execute(reports)
		if err != nil {
			panic("workload: aggregation failed: " + err.Error())
		}
		// Batch completion: these nonces are consumed and — nonces being
		// minted monotonically, with the next query's reports not yet
		// generated — nothing at or below the batch's high-water mark can
		// legitimately arrive again, so the replay-protection entries
		// retire instead of accumulating across the run.
		var maxNonce core.Nonce
		for _, rep := range reports {
			if rep.Nonce > maxNonce {
				maxNonce = rep.Nonce
			}
		}
		service.Compact(maxNonce)
		res.Executed = true
		res.Estimate = out.Aggregate.Total()
		if r.Config.Bias != nil {
			res.BiasEstimate = stream.BiasBound(out.BiasCount, res.Estimate,
				p.advertiser, p.epsilon, len(p.batch), r.Config.Bias,
				r.Config.Calibration.Beta)
		}

	case IPALike:
		// Centralized budgeting: the MPC charges ε to every epoch the
		// query's report windows touch, for the whole population, and
		// rejects the query when any filter is short.
		err := r.central.Authorize(p.advertiser.Site, res.FirstEpoch, res.LastEpoch, p.epsilon)
		// Stage 2: truth is well-defined either way (for reporting);
		// IPA computes attribution centrally on the full data, so
		// executed queries aggregate true report values.
		outputs := r.trueValues(reqs, p.batch)
		// Stage 3: fold in conversion order.
		for i := range outputs {
			res.Truth += outputs[i].truth
		}
		if err == nil {
			res.Executed = true
			res.Estimate = res.Truth +
				r.ipaNoise.Laplace(privacy.Scale(p.advertiser.MaxValue, p.epsilon))
			// Central consumption applies to every device in the
			// population, for each epoch the query touched.
			span := float64(res.LastEpoch-res.FirstEpoch) + 1
			r.totalConsumed += p.epsilon * span * float64(r.Config.Dataset.PopulationDevices)
		}
	}

	if res.Executed {
		res.RMSRE = stats.RelativeError(res.Estimate, res.Truth)
	} else {
		res.RMSRE = math.NaN()
	}
	return res, nil
}
