package workload

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// resultsEqual compares two QueryResult slices field-for-field, treating the
// NaN RMSRE of unexecuted queries as equal to itself (struct equality would
// call NaN != NaN a mismatch).
func resultsEqual(t *testing.T, label string, a, b []QueryResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		nx, ny := math.IsNaN(x.RMSRE), math.IsNaN(y.RMSRE)
		if nx && ny {
			x.RMSRE, y.RMSRE = 0, 0
		}
		if x != y {
			t.Fatalf("%s: query %d differs:\n  %+v\n  %+v", label, i, a[i], b[i])
		}
	}
}

// TestParallelismDeterminism is the tentpole's acceptance check: the same
// seed must produce byte-identical Run results — estimates, denied/biased
// counts, and budget totals — at Parallelism 1, 4, and GOMAXPROCS, for every
// system and with bias measurement on.
func TestParallelismDeterminism(t *testing.T) {
	// Dense per-device load so batches hold several conversions per
	// device and denials actually occur — the regime where a wrong
	// schedule would change which epoch a denial lands on.
	ds := smallMicro(t, 1.0, 0.5)
	bias := &core.BiasSpec{LastTouch: true}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"cookie-monster", Config{Dataset: ds, System: CookieMonster, EpsilonG: 2, Seed: 7}},
		{"ara-like", Config{Dataset: ds, System: ARALike, EpsilonG: 2, Seed: 7}},
		{"ipa-like", Config{Dataset: ds, System: IPALike, EpsilonG: 2, Seed: 7}},
		{"cm-bias", Config{Dataset: ds, System: CookieMonster, EpsilonG: 2, Seed: 7, Bias: bias}},
	}
	levels := []int{4, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.Parallelism = 1
			base := execute(t, seq)
			baseAvg, baseMax := base.BudgetStats()
			for _, par := range levels {
				cfg := tc.cfg
				cfg.Parallelism = par
				r := execute(t, cfg)
				resultsEqual(t, tc.name, base.Results, r.Results)
				if r.totalConsumed != base.totalConsumed {
					t.Fatalf("parallelism %d: totalConsumed %v != %v",
						par, r.totalConsumed, base.totalConsumed)
				}
				if avg, max := r.BudgetStats(); avg != baseAvg || max != baseMax {
					t.Fatalf("parallelism %d: budget stats (%v, %v) != (%v, %v)",
						par, avg, max, baseAvg, baseMax)
				}
				if got, want := r.PopulationAvgBudget(), base.PopulationAvgBudget(); got != want {
					t.Fatalf("parallelism %d: population avg %v != %v", par, got, want)
				}
				pp, bp := r.PerPairAverages(), base.PerPairAverages()
				if len(pp) != len(bp) {
					t.Fatalf("parallelism %d: %d pair averages, want %d", par, len(pp), len(bp))
				}
				for i := range pp {
					if pp[i] != bp[i] {
						t.Fatalf("parallelism %d: pair average %d: %v != %v", par, i, pp[i], bp[i])
					}
				}
			}
		})
	}
}

// TestParallelismMatchesAcrossRepeats re-runs the parallel engine and checks
// it agrees with itself (schedules differ between runs; results must not).
func TestParallelismMatchesAcrossRepeats(t *testing.T) {
	ds := smallMicro(t, 0.5, 0.5)
	cfg := Config{Dataset: ds, System: CookieMonster, EpsilonG: 2, Seed: 11,
		Parallelism: runtime.GOMAXPROCS(0)}
	a := execute(t, cfg)
	b := execute(t, cfg)
	resultsEqual(t, "repeat", a.Results, b.Results)
}

func TestParallelismValidation(t *testing.T) {
	ds := smallMicro(t, 0.1, 0.1)
	if _, err := Execute(Config{Dataset: ds, Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
}

func TestGroupByDevicePartition(t *testing.T) {
	ds := smallMicro(t, 1.0, 0.1)
	var convs []int
	for i, ev := range ds.Events {
		if ev.IsConversion() {
			convs = append(convs, i)
			if len(convs) == 50 {
				break
			}
		}
	}
	evs := ds.Events[:0:0]
	for _, i := range convs {
		evs = append(evs, ds.Events[i])
	}
	groups := stream.GroupByDevice(evs)
	seen := make(map[int]bool)
	total := 0
	for _, g := range groups {
		dev := evs[g[0]].Device
		last := -1
		for _, i := range g {
			if evs[i].Device != dev {
				t.Fatalf("group mixes devices %d and %d", dev, evs[i].Device)
			}
			if i <= last {
				t.Fatal("group indices out of batch order")
			}
			if seen[i] {
				t.Fatalf("index %d in two groups", i)
			}
			seen[i] = true
			last = i
			total++
		}
	}
	if total != len(evs) {
		t.Fatalf("groups cover %d of %d conversions", total, len(evs))
	}
}
