package workload

import (
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/events"
)

// consumedAt returns the privacy loss the system attributes to a
// (device, epoch) pair for one querier. For on-device systems this reads the
// device's own filter; for IPA-like every device is charged the central
// filter's consumption (the coarseness of population-level accounting,
// Thm. 3).
func (r *Run) consumedAt(dev events.DeviceID, q events.Site, e events.Epoch) float64 {
	switch r.Config.System {
	case IPALike:
		return r.central.Consumed(q, e)
	default:
		return r.fleet.ConsumedAt(dev, q, e)
	}
}

// BudgetStats returns the average and maximum budget consumption across all
// device-epochs requested through the run's queries — the Fig. 4 metrics.
// A device-epoch requested by several queriers contributes the sum of its
// per-querier losses, and the values are normalized by ε^G so they read as
// "fraction of the epoch's budget spent".
func (r *Run) BudgetStats() (avg, max float64) {
	if len(r.requested) == 0 || r.Config.EpsilonG == 0 {
		return 0, 0
	}
	// Iterate in sorted order so float accumulation is deterministic
	// run-to-run (map order would perturb the low bits).
	keys := make([]devEpoch, 0, len(r.requested))
	for key := range r.requested {
		keys = append(keys, key)
	}
	slices.SortFunc(keys, func(a, b devEpoch) int {
		switch {
		case a.d != b.d:
			if a.d < b.d {
				return -1
			}
			return 1
		case a.e < b.e:
			return -1
		case a.e > b.e:
			return 1
		}
		return 0
	})
	sum := 0.0
	for _, key := range keys {
		queriers := r.requested[key]
		sites := make([]events.Site, 0, len(queriers))
		for q := range queriers {
			sites = append(sites, q)
		}
		slices.Sort(sites)
		total := 0.0
		for _, q := range sites {
			total += r.consumedAt(key.d, q, key.e)
		}
		total /= r.Config.EpsilonG
		sum += total
		if total > max {
			max = total
		}
	}
	return sum / float64(len(r.requested)), max
}

// EpochSpan returns the number of epochs any query window can touch
// (including the pre-trace epochs early attribution windows reach into).
func (r *Run) EpochSpan() int { return int(r.lastSpanEpoch-r.firstSpanEpoch) + 1 }

// PopulationAvgBudget returns the average normalized budget consumption
// over *all* device-epochs in the population (devices × reachable epochs) —
// the fixed-denominator metric of Fig. 5a. It is monotone over the run
// because filters only fill.
func (r *Run) PopulationAvgBudget() float64 {
	denom := float64(r.Config.Dataset.PopulationDevices) * float64(r.EpochSpan()) * r.Config.EpsilonG
	if denom == 0 {
		return 0
	}
	return r.totalConsumed / denom
}

// CumulativeAvgBudget returns, after each query in submission order, the
// population-average normalized budget consumption — the Fig. 5a series.
func (r *Run) CumulativeAvgBudget() []float64 {
	out := make([]float64, len(r.Results))
	for i := range r.Results {
		out[i] = r.Results[i].avgBudgetAfter
	}
	return out
}

// RMSREs returns the realized RMSRE of every executed query.
func (r *Run) RMSREs() []float64 {
	var out []float64
	for _, res := range r.Results {
		if res.Executed && !math.IsNaN(res.RMSRE) {
			out = append(out, res.RMSRE)
		}
	}
	return out
}

// ExecutedFraction returns the fraction of queries that executed (1 for
// on-device systems; below 1 for IPA-like once budget depletes).
func (r *Run) ExecutedFraction() float64 {
	if len(r.Results) == 0 {
		return 0
	}
	n := 0
	for _, res := range r.Results {
		if res.Executed {
			n++
		}
	}
	return float64(n) / float64(len(r.Results))
}

// PerPairAverages returns one value per (device, advertiser) pair: the
// average normalized budget consumption across all trace epochs within that
// advertiser's filters on that device — the Fig. 6a/6d metric. Devices that
// never consumed anything contribute zeros (for on-device systems) or the
// central per-epoch average (for IPA-like), exactly as the population-wide
// CDF requires.
func (r *Run) PerPairAverages() []float64 {
	epochs := r.EpochSpan()
	if epochs == 0 || r.Config.EpsilonG == 0 {
		return nil
	}
	advs := r.Config.Dataset.Advertisers
	population := r.Config.Dataset.PopulationDevices
	out := make([]float64, 0, population*len(advs))

	if r.Config.System == IPALike {
		for _, adv := range advs {
			sum := 0.0
			for e := r.firstSpanEpoch; e <= r.lastSpanEpoch; e++ {
				sum += r.central.Consumed(adv.Site, e)
			}
			avg := sum / float64(epochs) / r.Config.EpsilonG
			for d := 0; d < population; d++ {
				out = append(out, avg)
			}
		}
		return out
	}

	// On-device: read each active device's per-querier totals once, then
	// pad with zeros for silent devices.
	r.fleet.Range(func(d *core.Device) bool {
		perQuerier := d.ConsumedByQuerier()
		for _, adv := range advs {
			out = append(out, perQuerier[adv.Site]/float64(epochs)/r.Config.EpsilonG)
		}
		return true
	})
	silent := population - r.fleet.Len()
	for i := 0; i < silent*len(advs); i++ {
		out = append(out, 0)
	}
	return out
}

// ConsumedByQuerier returns each querier's total consumed privacy loss
// summed across the device fleet — the per-querier budget footprint the
// hostile-traffic reports break out. Devices accumulate in ascending ID
// order and each device's epochs in ascending epoch order, so the float
// sums are deterministic run-to-run. For IPA-like runs the central filter's
// per-epoch consumption is charged to every device in the population,
// mirroring PerPairAverages.
func (r *Run) ConsumedByQuerier() map[events.Site]float64 {
	out := make(map[events.Site]float64, len(r.Config.Dataset.Advertisers))
	if r.Config.System == IPALike {
		for _, adv := range r.Config.Dataset.Advertisers {
			sum := 0.0
			for e := r.firstSpanEpoch; e <= r.lastSpanEpoch; e++ {
				sum += r.central.Consumed(adv.Site, e)
			}
			out[adv.Site] = sum * float64(r.Config.Dataset.PopulationDevices)
		}
		return out
	}
	r.fleet.Range(func(d *core.Device) bool {
		for q, total := range d.ConsumedByQuerier() {
			out[q] += total
		}
		return true
	})
	return out
}

// BudgetDenials returns the total number of budget charges denied across the
// device fleet — how often traffic (honest or hostile) ran into filter
// capacities. Always 0 for IPA-like runs, which reject whole queries at the
// central filter instead of denying per-device charges.
func (r *Run) BudgetDenials() uint64 {
	if r.Config.System == IPALike {
		return 0
	}
	var n uint64
	r.fleet.Range(func(d *core.Device) bool {
		n += d.BudgetDenials()
		return true
	})
	return n
}

// RangeDevices visits every device the run instantiated, stopping early if
// fn returns false — the inspection hook the robustness property tests use
// to audit per-device ledgers (filter never over capacity, honest lanes
// untouched by hostile queriers). Visit order is the fleet's shard order;
// callers needing determinism sort what they collect.
func (r *Run) RangeDevices(fn func(d *core.Device) bool) { r.fleet.Range(fn) }

// ActiveDevices returns the number of devices that generated at least one
// report.
func (r *Run) ActiveDevices() int { return r.fleet.Len() }

// RequestedDeviceEpochs returns the number of distinct device-epochs touched
// by at least one query.
func (r *Run) RequestedDeviceEpochs() int { return len(r.requested) }
