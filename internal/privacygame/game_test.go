package privacygame

import (
	"fmt"
	"testing"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/stats"
)

const nike = events.Site("nike.com")

func impression(id events.EventID, day int, campaign string) events.Event {
	return events.Event{
		ID: id, Kind: events.KindImpression, Day: day,
		Publisher: "pub.example", Advertiser: nike, Campaign: campaign,
	}
}

// request builds a random-but-valid attribution request whose declared
// report sensitivity follows Thm. 18 (2·Amax for shifting logics over
// multi-epoch windows), as the querier protocol requires.
func request(rng *stats.RNG, firstEpoch, lastEpoch events.Epoch) *core.Request {
	value := float64(1 + rng.Intn(50))
	m := 1 + rng.Intn(3)
	k := int(lastEpoch-firstEpoch) + 1
	logic := attribution.LastTouch{}
	reportSens := attribution.ReportGlobalSensitivity(logic, value, m, k)
	querySens := reportSens * float64(1+rng.Intn(3))
	return &core.Request{
		Querier:    nike,
		FirstEpoch: firstEpoch,
		LastEpoch:  lastEpoch,
		Selector:   events.NewCampaignSelector(nike, "c0", "c1"),
		Function: attribution.Slots{
			Logic:          logic,
			MaxImpressions: m,
			Value:          value,
		},
		Epsilon:           0.05 + rng.Float64()*0.5,
		ReportSensitivity: reportSens,
		QuerySensitivity:  querySens,
		PNorm:             1,
	}
}

// TestRealizedLossNeverExceedsBudget is the executable Thm. 1/Thm. 5: a
// randomized adaptive adversary fires hundreds of queries at neighboring
// worlds; the analytically-computed realized privacy loss must stay within
// (1) the loss the filter actually charged, and (2) the capacity ε^G.
func TestRealizedLossNeverExceedsBudget(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := stats.Stream(uint64(trial), "privacy-game")
			const epsG = 1.0
			challengeEpoch := events.Epoch(rng.Intn(4))

			// Private challenge events: relevant impressions the
			// adversary wants to detect.
			var challenge []events.Event
			for i := 0; i <= rng.Intn(4); i++ {
				challenge = append(challenge,
					impression(events.EventID(1000+i), int(challengeEpoch)*7+rng.Intn(7),
						fmt.Sprintf("c%d", rng.Intn(2))))
			}
			g := New(1, challengeEpoch, epsG, challenge)

			// Shared context on *other* epochs (the neighboring
			// relation holds everything but the challenge record
			// fixed).
			for i := 0; i < 10; i++ {
				e := events.Epoch(rng.Intn(6))
				if e == challengeEpoch {
					continue
				}
				g.AddShared(e, impression(events.EventID(2000+i), int(e)*7+rng.Intn(7),
					fmt.Sprintf("c%d", rng.Intn(2))))
			}

			// Adaptive query stream.
			for q := 0; q < 200; q++ {
				first := events.Epoch(rng.Intn(6))
				last := first + events.Epoch(rng.Intn(4))
				req := request(rng, first, last)
				perQuery, err := g.Query(req)
				if err != nil {
					t.Fatal(err)
				}
				if perQuery < 0 {
					t.Fatalf("negative realized loss %v", perQuery)
				}
			}

			realized := g.RealizedLoss()
			charged := g.ChargedLoss(nike)
			if realized > charged*(1+1e-9)+1e-12 {
				t.Fatalf("realized loss %v exceeds charged %v", realized, charged)
			}
			if realized > epsG*(1+1e-9) {
				t.Fatalf("realized loss %v exceeds capacity %v", realized, epsG)
			}
			if charged > epsG*(1+1e-9) {
				t.Fatalf("filter over-charged: %v > %v", charged, epsG)
			}
		})
	}
}

// TestGameDetectsUnderDeclaredSensitivity documents why the querier protocol
// must declare the Thm. 18 report sensitivity: with a campaign-binned
// attribution and an under-declared Δreport (the value cap instead of twice
// it), removing an epoch can shift the full value between bins, and the
// realized loss overshoots what the filter charged.
func TestGameDetectsUnderDeclaredSensitivity(t *testing.T) {
	// Challenge epoch holds the most recent impression (campaign c1);
	// a shared earlier epoch holds a c0 impression.
	challenge := []events.Event{impression(1, 7, "c1")}
	g := New(1, 1, 10, challenge)
	g.AddShared(0, impression(2, 0, "c0"))

	value := 10.0
	req := &core.Request{
		Querier:    nike,
		FirstEpoch: 0, LastEpoch: 1,
		Selector: events.NewCampaignSelector(nike, "c0", "c1"),
		Function: attribution.Binned{
			Logic: attribution.LastTouch{},
			Bins:  map[string]int{"c0": 0, "c1": 1},
			Dim:   2,
			Value: value,
		},
		Epsilon:           1,
		ReportSensitivity: value, // under-declared: Thm. 18 says 2·value
		QuerySensitivity:  2 * value,
		PNorm:             1,
	}
	loss, err := g.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	charged := g.ChargedLoss(nike)
	// The full value moves from bin c1 (world 1's last touch) to bin c0:
	// L1 diff = 2·value, but the filter only charged ε·value/Δquery.
	if !(loss > charged) {
		t.Fatalf("under-declaration not detected: realized %v, charged %v", loss, charged)
	}
	// Declaring the correct Thm. 18 sensitivity restores the invariant.
	g2 := New(1, 1, 10, challenge)
	g2.AddShared(0, impression(2, 0, "c0"))
	req2 := *req
	req2.ReportSensitivity = 2 * value
	loss2, err := g2.Query(&req2)
	if err != nil {
		t.Fatal(err)
	}
	if loss2 > g2.ChargedLoss(nike)*(1+1e-9) {
		t.Fatalf("correct declaration still violates: realized %v, charged %v",
			loss2, g2.ChargedLoss(nike))
	}
}

// TestExhaustionClosesTheChannel: once the challenge epoch's filter halts,
// further queries reveal nothing (realized loss stops growing) — the
// mechanism degrades to the world-0 behaviour instead of leaking.
func TestExhaustionClosesTheChannel(t *testing.T) {
	challenge := []events.Event{impression(1, 7, "c0")}
	g := New(1, 1, 0.3, challenge) // tiny capacity

	req := func() *core.Request {
		return &core.Request{
			Querier:    nike,
			FirstEpoch: 0, LastEpoch: 2,
			Selector:          events.NewCampaignSelector(nike, "c0"),
			Function:          attribution.ScalarValue{Value: 5},
			Epsilon:           0.2,
			ReportSensitivity: 5,
			QuerySensitivity:  10,
			PNorm:             1,
		}
	}
	var afterExhaustion float64
	for q := 0; q < 20; q++ {
		loss, err := g.Query(req())
		if err != nil {
			t.Fatal(err)
		}
		if q >= 10 {
			afterExhaustion += loss
		}
	}
	if afterExhaustion != 0 {
		t.Fatalf("queries after exhaustion leaked %v", afterExhaustion)
	}
	if g.RealizedLoss() > 0.3*(1+1e-9) {
		t.Fatalf("total realized %v exceeds capacity", g.RealizedLoss())
	}
}

// TestIrrelevantChallengeLeaksNothing: when no query's selector matches the
// challenge events, both worlds behave identically — the zero-loss case.
func TestIrrelevantChallengeLeaksNothing(t *testing.T) {
	challenge := []events.Event{impression(1, 7, "c9")} // never selected
	g := New(1, 1, 1, challenge)
	rng := stats.NewRNG(5)
	for q := 0; q < 50; q++ {
		first := events.Epoch(rng.Intn(3))
		if _, err := g.Query(request(rng, first, first+2)); err != nil {
			t.Fatal(err)
		}
	}
	if g.RealizedLoss() != 0 {
		t.Fatalf("irrelevant record leaked %v", g.RealizedLoss())
	}
	if g.ChargedLoss(nike) != 0 {
		t.Fatalf("irrelevant record was charged %v", g.ChargedLoss(nike))
	}
	if g.Queries() != 50 {
		t.Fatalf("queries = %d", g.Queries())
	}
}
