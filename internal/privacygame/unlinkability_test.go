package privacygame

import (
	"fmt"
	"testing"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/stats"
)

func TestUnlinkabilityBoundHolds(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := stats.Stream(uint64(trial), "unlink-game")
			const capD0, capD1 = 0.6, 0.4

			// F₀: a handful of relevant impressions at one epoch;
			// roughly half move to d₁ in World B.
			var f0 []events.Event
			for i := 0; i <= rng.Intn(5); i++ {
				f0 = append(f0, impression(events.EventID(100+i), 7+rng.Intn(7),
					fmt.Sprintf("c%d", rng.Intn(2))))
			}
			g := NewUnlinkability(1, 2, 1, f0,
				func(ev events.Event) bool { return ev.ID%2 == 0 },
				capD0, capD1)

			for q := 0; q < 150; q++ {
				first := events.Epoch(rng.Intn(2))
				last := first + events.Epoch(rng.Intn(3))
				if _, err := g.Query(request(rng, first, last)); err != nil {
					t.Fatal(err)
				}
			}

			bound := g.Bound(1, 2)
			if want := 2*capD0 + capD1; bound != want {
				t.Fatalf("bound = %v, want %v", bound, want)
			}
			if g.RealizedLoss() > bound*(1+1e-9) {
				t.Fatalf("realized loss %v exceeds Thm. 2 bound %v",
					g.RealizedLoss(), bound)
			}
		})
	}
}

func TestUnlinkabilityIdenticalSplitLeaksNothing(t *testing.T) {
	// If no events move (F₁ = ∅), the worlds are identical.
	f0 := []events.Event{impression(1, 7, "c0"), impression(2, 8, "c0")}
	g := NewUnlinkability(1, 2, 1, f0,
		func(events.Event) bool { return false }, 1, 1)
	rng := stats.NewRNG(3)
	for q := 0; q < 40; q++ {
		if _, err := g.Query(request(rng, 0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if g.RealizedLoss() != 0 {
		t.Fatalf("identical worlds leaked %v", g.RealizedLoss())
	}
}

func TestUnlinkabilityInvalidRequest(t *testing.T) {
	g := NewUnlinkability(1, 2, 0, nil, func(events.Event) bool { return true }, 1, 1)
	if _, err := g.Query(&core.Request{}); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestUnlinkabilityScalarQueriesAreBudgetLimited(t *testing.T) {
	// Concrete linkage attempt: the querier counts relevant impressions
	// per report. Splitting two impressions across devices turns one
	// device-report of value 2 into two of value 1 each — the summed
	// query output is identical, so scalar sum queries cannot link at
	// all; only the budget-bounded per-device structure could.
	f0 := []events.Event{impression(1, 7, "c0"), impression(2, 8, "c0")}
	g := NewUnlinkability(1, 2, 1, f0,
		func(ev events.Event) bool { return ev.ID == 2 }, 1, 1)
	req := &core.Request{
		Querier:    nike,
		FirstEpoch: 0, LastEpoch: 2,
		Selector:          events.NewCampaignSelector(nike, "c0"),
		Function:          attribution.ScalarValue{Value: 1},
		Epsilon:           0.2,
		ReportSensitivity: 1,
		QuerySensitivity:  2,
		PNorm:             1,
	}
	loss, err := g.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	// World A: one device reports 1 (ScalarValue caps at the value);
	// World B: both devices report 1 each → sum 2. The 1-unit gap is the
	// distinguishing signal, costed at diff/b = 1/(2/0.2) = 0.1.
	if loss <= 0 {
		t.Fatal("split should be distinguishable through count queries")
	}
	if g.RealizedLoss() > g.Bound(1, 2) {
		t.Fatal("bound violated")
	}
}
