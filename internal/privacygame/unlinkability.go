package privacygame

import (
	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/privacy"
)

// UnlinkabilityGame is the executable Thm. 2 (Def. 1's game): the adversary
// tries to distinguish World A — events F₀ all on device d₀ — from World B —
// F₁ ⊂ F₀ on device d₁ and F₀∖F₁ on d₀ — at a single epoch. Both worlds run
// the full mechanism; the realized loss of every released answer is bounded
// analytically, and Thm. 2 promises the total stays below
// 2ε^G_{d₀} + ε^G_{d₁}.
type UnlinkabilityGame struct {
	epoch events.Epoch

	dbs   [2]*events.Database // A = single device, B = split
	fleet [2]*core.Fleet

	capacities map[events.DeviceID]float64
	realized   float64
}

// NewUnlinkability builds the game: all of f0 lands on d0 in World A; in
// World B the events selected by onD1 move to d1. Capacities are per device
// (ε^G_{d}).
func NewUnlinkability(d0, d1 events.DeviceID, epoch events.Epoch, f0 []events.Event,
	onD1 func(events.Event) bool, capD0, capD1 float64) *UnlinkabilityGame {
	g := &UnlinkabilityGame{
		epoch:      epoch,
		capacities: map[events.DeviceID]float64{d0: capD0, d1: capD1},
	}
	for w := range g.dbs {
		g.dbs[w] = events.NewDatabase()
	}
	for _, ev := range f0 {
		a := ev
		a.Device = d0
		g.dbs[0].Record(epoch, a)
		b := ev
		if onD1(ev) {
			b.Device = d1
		} else {
			b.Device = d0
		}
		g.dbs[1].Record(epoch, b)
	}
	for w := range g.fleet {
		db := g.dbs[w]
		db.Freeze()
		g.fleet[w] = core.NewFleet(2, func(dev events.DeviceID) *core.Device {
			return core.NewDevice(dev, db, g.capacities[dev], core.CookieMonsterPolicy{})
		})
		g.fleet[w].GetOrCreate(d0)
		g.fleet[w].GetOrCreate(d1)
	}
	return g
}

// Query runs one attribution request against *both devices in both worlds*
// (the querier cannot tell which device generated which report, so it sums
// them) and accumulates the realized loss of the released sum.
func (g *UnlinkabilityGame) Query(req *core.Request) (float64, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	var sums [2]attribution.Histogram
	for w := range g.fleet {
		sum := attribution.NewHistogram(req.Function.OutputDim())
		var rangeErr error
		g.fleet[w].Range(func(dev *core.Device) bool {
			rep, _, err := dev.GenerateReport(req)
			if err != nil {
				rangeErr = err
				return false
			}
			sum.Add(rep.Histogram)
			return true
		})
		if rangeErr != nil {
			return 0, rangeErr
		}
		sums[w] = sum
	}
	b := privacy.Scale(req.QuerySensitivity, req.Epsilon)
	diff := 0.0
	for i := range sums[0] {
		d := sums[0][i] - sums[1][i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	loss := diff / b
	g.realized += loss
	return loss, nil
}

// RealizedLoss returns the accumulated distinguishing loss.
func (g *UnlinkabilityGame) RealizedLoss() float64 { return g.realized }

// Bound returns the Thm. 2 guarantee 2ε^G_{d₀} + ε^G_{d₁} for the game's
// device pair, where d₀ is the device holding F₀ in World A.
func (g *UnlinkabilityGame) Bound(d0, d1 events.DeviceID) float64 {
	return privacy.UnlinkabilityBound(g.capacities[d0], g.capacities[d1])
}
