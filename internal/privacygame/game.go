// Package privacygame makes the paper's privacy proofs executable: it runs
// the inner privacy game of Appendix C/D (Alg. 2) — the same adaptive query
// stream against two neighboring databases that differ in one device-epoch
// record — and accounts the *realized* privacy loss analytically.
//
// For the Laplace mechanism, the log-likelihood ratio of any released query
// answer between the two worlds is at most ‖Σρ_r(D⁰) − Σρ_r(D¹)‖₁ / b
// (Eq. 8–9 of the proof of Thm. 5), so the game's total realized loss is
//
//	Σ_k ‖A_k(D⁰) − A_k(D¹)‖₁ / b_k ,
//
// which Thm. 5 bounds by the opt-out record's capacity ε^G_x. The game
// computes both sides exactly — no sampling, no noise — turning the proof's
// telescoping argument into an assertion the test suite can check against a
// randomized adversary.
package privacygame

import (
	"fmt"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/privacy"
)

// World identifies the two sides of the neighboring relation.
type World int

const (
	// WithoutRecord is the world where the challenge record's private
	// events are absent (replaced by ∅, the replace-with-default side).
	WithoutRecord World = iota
	// WithRecord is the world containing the full record.
	WithRecord
)

// Game runs one privacy game for a single challenge device-epoch. The
// adversary controls the device's other events and the query stream; the
// game maintains one engine per world and accumulates realized loss.
type Game struct {
	device events.DeviceID
	epoch  events.Epoch

	dbs     [2]*events.Database
	engines [2]*core.Device

	realized float64 // Σ ‖ρ⁰−ρ¹‖₁/b over all queries
	queries  int
}

// New builds a game for device d and challenge epoch e with per-epoch
// capacity epsG. challenge holds the private events present only in
// WithRecord; shared events (on any epoch, including e) can be added to both
// worlds with AddShared.
func New(d events.DeviceID, e events.Epoch, epsG float64, challenge []events.Event) *Game {
	g := &Game{device: d, epoch: e}
	for w := range g.dbs {
		g.dbs[w] = events.NewDatabase()
	}
	for _, ev := range challenge {
		ev.Device = d
		g.dbs[WithRecord].Record(e, ev)
	}
	for w := range g.engines {
		g.engines[w] = core.NewDevice(d, g.dbs[w], epsG, core.CookieMonsterPolicy{})
	}
	return g
}

// AddShared records an event in both worlds (the adversary-chosen context
// that the neighboring relation holds fixed).
func (g *Game) AddShared(epoch events.Epoch, ev events.Event) {
	ev.Device = g.device
	for w := range g.dbs {
		g.dbs[w].Record(epoch, ev)
	}
}

// Query submits one attribution request to both worlds and accumulates the
// realized privacy loss of releasing the (noisy) report under the Laplace
// mechanism with scale Δquery/ε. It returns the per-query realized loss.
func (g *Game) Query(req *core.Request) (float64, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	var hists [2]attribution.Histogram
	for w := range g.engines {
		rep, _, err := g.engines[w].GenerateReport(req)
		if err != nil {
			return 0, fmt.Errorf("world %d: %w", w, err)
		}
		hists[w] = rep.Histogram
	}
	b := privacy.Scale(req.QuerySensitivity, req.Epsilon)
	diff := 0.0
	for i := range hists[0] {
		d := hists[0][i] - hists[1][i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	loss := diff / b
	g.realized += loss
	g.queries++
	return loss, nil
}

// RealizedLoss returns the total realized privacy loss Σ‖ρ⁰−ρ¹‖₁/b so far.
func (g *Game) RealizedLoss() float64 { return g.realized }

// Queries returns the number of queries submitted.
func (g *Game) Queries() int { return g.queries }

// ChargedLoss returns the budget the WithRecord world actually consumed from
// the challenge epoch — the quantity the filter bounds by ε^G. Thm. 5's
// telescoping argument shows RealizedLoss ≤ ChargedLoss per query, hence
// overall.
func (g *Game) ChargedLoss(querier events.Site) float64 {
	return g.engines[WithRecord].Consumed(querier, g.epoch)
}
