package netfault

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Observer sees every exchange the server fully processed through a
// Transport — including exchanges whose response was then dropped or
// superseded by a manufactured duplicate, which the client itself never
// observes. status and body are the server's actual response; dropped
// reports whether the fault layer discarded it afterwards. The
// convergence property hangs its duplicate accounting on this hook: the
// observer's view is exactly the server's view of delivered traffic.
type Observer func(req *http.Request, status int, body []byte, dropped bool)

// Transport is a fault-injecting http.RoundTripper. Faults are decided
// per request in a fixed order (latency, dial error, duplicate send,
// response drop) from the seeded stream, so a given seed and request
// sequence replays the same schedule.
type Transport struct {
	base http.RoundTripper
	spec Spec
	inj  *injector

	// Observer, if set, is called for every delivered exchange.
	Observer Observer

	delivered      atomic.Int64
	dialErrors     atomic.Int64
	responseDrops  atomic.Int64
	duplicateSends atomic.Int64
	latencies      atomic.Int64
}

// NewTransport wraps base (nil = http.DefaultTransport) with the faults
// described by spec.
func NewTransport(base http.RoundTripper, spec Spec) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	spec = spec.withDefaults()
	return &Transport{base: base, spec: spec, inj: newInjector(spec)}
}

// Stats snapshots the transport's fault telemetry.
func (t *Transport) Stats() Stats {
	return Stats{
		Delivered:      t.delivered.Load(),
		DialErrors:     t.dialErrors.Load(),
		ResponseDrops:  t.responseDrops.Load(),
		DuplicateSends: t.duplicateSends.Load(),
		Latencies:      t.latencies.Load(),
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.inj.hit(t.spec.SendLatency) {
		t.latencies.Add(1)
		time.Sleep(time.Duration(t.inj.draw(int64(t.spec.MaxLatency))))
	}

	if t.inj.hit(t.spec.DialError) {
		t.dialErrors.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%w: dial %s: connection timed out", ErrInjected, req.URL.Host)
	}

	resp, err := t.deliver(req)
	if err != nil {
		return nil, err
	}

	// A duplicate send delivers the same request again, as a retrying
	// middlebox would; the client sees the second response. Requires a
	// replayable body (GetBody), which net/http sets for buffered bodies.
	if t.inj.hit(t.spec.DuplicateSend) && (req.Body == nil || req.GetBody != nil) {
		if dup, err2 := cloneRequest(req); err2 == nil {
			if resp2, err2 := t.deliver(dup); err2 == nil {
				t.duplicateSends.Add(1)
				t.observe(req, resp, true)
				resp.Body.Close()
				resp = resp2
			}
		}
	}

	if t.inj.hit(t.spec.ResponseDrop) {
		t.responseDrops.Add(1)
		t.observe(req, resp, true)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: read response from %s: connection reset by peer", ErrInjected, req.URL.Host)
	}

	t.observe(req, resp, false)
	return resp, nil
}

// deliver performs one real exchange and buffers the response body so the
// observer can read it and the fault layer can still hand the response
// (or its duplicate's) to the caller; the underlying connection is fully
// drained and stays reusable.
func (t *Transport) deliver(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	t.delivered.Add(1)
	return resp, nil
}

func (t *Transport) observe(req *http.Request, resp *http.Response, dropped bool) {
	if t.Observer == nil {
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body = io.NopCloser(bytes.NewReader(body))
	t.Observer(req, resp.StatusCode, body, dropped)
}

func cloneRequest(req *http.Request) (*http.Request, error) {
	dup := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		dup.Body = body
	}
	return dup, nil
}
