package netfault

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Listener wraps a net.Listener and arms each accepted connection with
// seeded faults: a reset after a drawn byte budget, or slow-loris reads
// and writes. Fault decisions happen once per conn at accept time so a
// seed replays the same per-conn schedule for the same accept order.
type Listener struct {
	net.Listener
	spec Spec
	inj  *injector

	connResets atomic.Int64
	slowConns  atomic.Int64
}

// WrapListener wraps ln with the server-side faults described by spec.
func WrapListener(ln net.Listener, spec Spec) *Listener {
	spec = spec.withDefaults()
	return &Listener{Listener: ln, spec: spec, inj: newInjector(spec)}
}

// Stats snapshots the listener's fault telemetry.
func (l *Listener) Stats() Stats {
	return Stats{
		ConnResets: l.connResets.Load(),
		SlowConns:  l.slowConns.Load(),
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := newFaultConn(c, l.spec, l.inj)
	if fc.resetAfter >= 0 {
		l.connResets.Add(1)
	}
	if fc.slow {
		l.slowConns.Add(1)
	}
	return fc, nil
}

// Conn is a fault-armed connection. It never mutates payload bytes: each
// direction delivers a prefix of what the peer sent — a reset truncates,
// a slow conn only delays.
type Conn struct {
	net.Conn
	spec Spec
	inj  *injector

	// resetAfter is the remaining byte budget (reads + writes combined)
	// before the conn fails both directions; -1 = never.
	mu         sync.Mutex
	resetAfter int64
	reset      bool

	slow bool
}

// WrapConn arms a single connection from its own injector, for tests and
// the fuzz target; Listener shares one injector across conns instead.
func WrapConn(c net.Conn, spec Spec) *Conn {
	spec = spec.withDefaults()
	return newFaultConn(c, spec, newInjector(spec))
}

func newFaultConn(c net.Conn, spec Spec, inj *injector) *Conn {
	fc := &Conn{Conn: c, spec: spec, inj: inj, resetAfter: -1}
	if inj.hit(spec.ConnReset) {
		fc.resetAfter = 1 + inj.draw(int64(spec.ResetBudget))
	}
	if inj.hit(spec.SlowConn) {
		fc.slow = true
	}
	return fc
}

// spend consumes up to n bytes of the reset budget. It returns how many
// bytes may still pass this op and whether the conn was already reset
// before the op started. When the budget runs out mid-op the remaining
// bytes pass (prefix delivery), the conn is marked reset, and finish
// kills it afterwards so both directions observe the failure.
func (c *Conn) spend(n int) (allowed int, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, true
	}
	if c.resetAfter < 0 {
		return n, false
	}
	if int64(n) >= c.resetAfter {
		n = int(c.resetAfter)
		c.resetAfter = 0
		c.reset = true
		return n, n == 0
	}
	c.resetAfter -= int64(n)
	return n, false
}

// finish runs after an op: once the budget is spent it closes the
// underlying conn so a peer blocked on the other direction unblocks.
func (c *Conn) finish(err error, op string) error {
	c.mu.Lock()
	reset := c.reset
	c.mu.Unlock()
	if reset {
		c.Conn.Close()
		if err != nil {
			err = c.errReset(op)
		}
	}
	return err
}

func (c *Conn) errReset(op string) error {
	return fmt.Errorf("%w: %s %s: connection reset by peer", ErrInjected, op, c.RemoteAddr())
}

func (c *Conn) Read(b []byte) (int, error) {
	limit := len(b)
	if c.slow && limit > c.spec.SlowChunk {
		limit = c.spec.SlowChunk
	}
	limit, dead := c.spend(limit)
	if limit == 0 {
		if dead {
			return 0, c.errReset("read")
		}
		return 0, nil
	}
	if c.slow {
		time.Sleep(time.Duration(c.inj.draw(int64(c.spec.SlowDelay))))
	}
	n, err := c.Conn.Read(b[:limit])
	return n, c.finish(err, "read")
}

func (c *Conn) Write(b []byte) (int, error) {
	written := 0
	for written < len(b) {
		chunk := len(b) - written
		if c.slow && chunk > c.spec.SlowChunk {
			chunk = c.spec.SlowChunk
		}
		chunk, dead := c.spend(chunk)
		if chunk == 0 {
			if dead {
				return written, c.errReset("write")
			}
			continue
		}
		if c.slow {
			time.Sleep(time.Duration(c.inj.draw(int64(c.spec.SlowDelay))))
		}
		n, err := c.Conn.Write(b[written : written+chunk])
		written += n
		if err = c.finish(err, "write"); err != nil {
			return written, err
		}
	}
	return written, nil
}
