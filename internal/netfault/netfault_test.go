package netfault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	a := newInjector(Spec{Seed: 42})
	b := newInjector(Spec{Seed: 42})
	for i := 0; i < 1000; i++ {
		if a.hit(0.3) != b.hit(0.3) {
			t.Fatalf("hit sequence diverged at op %d", i)
		}
		if a.draw(97) != b.draw(97) {
			t.Fatalf("draw sequence diverged at op %d", i)
		}
	}
}

func TestInjectorBudget(t *testing.T) {
	inj := newInjector(Spec{Seed: 7, MaxFaults: 5})
	hits := 0
	for i := 0; i < 10000; i++ {
		if inj.hit(0.9) {
			hits++
		}
	}
	if hits != 5 {
		t.Fatalf("budget of 5 produced %d faults", hits)
	}
}

func TestTransportCleanSpecIsTransparent(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	tr := NewTransport(nil, Spec{Seed: 1})
	client := &http.Client{Transport: tr}
	for i := 0; i < 50; i++ {
		resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello"))
		if err != nil {
			t.Fatalf("clean transport errored: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != "ok" {
			t.Fatalf("body = %q", body)
		}
	}
	if served.Load() != 50 {
		t.Fatalf("server saw %d requests, want 50", served.Load())
	}
	if s := tr.Stats(); s.Delivered != 50 || s.DialErrors+s.ResponseDrops+s.DuplicateSends != 0 {
		t.Fatalf("clean transport stats = %+v", s)
	}
}

// TestTransportObserverAccounting drives a counting server through a
// hostile transport and checks the books: every server-side request is
// observed exactly once, and client-visible successes + drops +
// superseded duplicates equal deliveries.
func TestTransportObserverAccounting(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	tr := NewTransport(nil, Spec{
		Seed:          99,
		DialError:     0.1,
		ResponseDrop:  0.15,
		DuplicateSend: 0.15,
		SendLatency:   0.1,
		MaxLatency:    200 * time.Microsecond,
	})
	var observed, observedDropped atomic.Int64
	tr.Observer = func(req *http.Request, status int, body []byte, dropped bool) {
		if status != http.StatusOK || string(body) != "ok" {
			t.Errorf("observer saw status=%d body=%q", status, body)
		}
		observed.Add(1)
		if dropped {
			observedDropped.Add(1)
		}
	}
	client := &http.Client{Transport: tr}

	var ok, failed int64
	for i := 0; i < 400; i++ {
		resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("payload"))
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("non-injected transport error: %v", err)
			}
			failed++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ok++
	}

	s := tr.Stats()
	if s.DialErrors == 0 || s.ResponseDrops == 0 || s.DuplicateSends == 0 {
		t.Fatalf("hostile spec injected nothing: %+v", s)
	}
	if served.Load() != s.Delivered {
		t.Fatalf("server served %d, transport delivered %d", served.Load(), s.Delivered)
	}
	if observed.Load() != s.Delivered {
		t.Fatalf("observer saw %d exchanges, transport delivered %d", observed.Load(), s.Delivered)
	}
	if got, want := observedDropped.Load(), s.ResponseDrops+s.DuplicateSends; got != want {
		t.Fatalf("observer saw %d dropped, stats say %d", got, want)
	}
	// Client-visible outcomes partition deliveries: each success consumed
	// one delivery plus one per manufactured duplicate; each drop consumed
	// one (plus its duplicates, already counted).
	if got, want := ok+s.ResponseDrops+s.DuplicateSends, s.Delivered; got != want {
		t.Fatalf("delivery books don't balance: ok=%d drops=%d dups=%d delivered=%d",
			ok, s.ResponseDrops, s.DuplicateSends, s.Delivered)
	}
	if failed != s.DialErrors+s.ResponseDrops {
		t.Fatalf("client failures %d != dial %d + drops %d", failed, s.DialErrors, s.ResponseDrops)
	}
}

func TestListenerConnReset(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(base, Spec{Seed: 5, ConnReset: 1.0, ResetBudget: 256})
	defer ln.Close()

	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	payload := make([]byte, 1024)
	// The armed conn must fail within the byte budget; the client
	// eventually observes a write error or EOF rather than hanging.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Write(payload); err != nil {
			if ln.Stats().ConnResets == 0 {
				t.Fatalf("conn failed but no reset recorded")
			}
			return
		}
	}
	t.Fatal("reset-armed conn accepted writes past its budget")
}

func TestSlowConnDeliversIntact(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	fc := WrapConn(server, Spec{Seed: 3, SlowConn: 1.0, SlowChunk: 7, SlowDelay: 50 * time.Microsecond})
	defer fc.Close()

	msg := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	go func() {
		fc.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(got) != string(msg) {
		t.Fatalf("slow conn corrupted payload: %q", got)
	}
}
