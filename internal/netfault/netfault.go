// Package netfault is the serving path's network-fault injection seam,
// mirroring internal/checkpoint's errfs for the wire (DESIGN.md §14): a
// seeded, deterministic layer that manufactures the failures millions of
// real devices would generate — connection resets, dial timeouts,
// responses dropped after the server processed the request (the classic
// ack-lost case), duplicated sends, slow-loris reads and writes, and
// injected latency.
//
// It wraps the two ends of an HTTP exchange:
//
//   - Transport wraps an http.RoundTripper on the client side. Its faults
//     model the client's view of a flaky network: a request that never
//     reaches the server (dial error), a request delivered twice
//     (duplicate send), and — the case idempotent admission exists for —
//     a request the server fully processed whose acknowledgement is lost
//     (response drop).
//   - Listener wraps a net.Listener on the server side. Its faults model
//     hostile or degraded connections: resets after a seeded byte budget
//     and slow-loris connections that trickle bytes through tiny reads
//     and writes.
//
// Fault placement draws from a SplitMix64 stream seeded by Spec.Seed with
// an optional total budget, exactly like errfs: which operation faults
// depends on operation order, but the retry/dedupe protocol must tolerate
// every placement — that is the point. The layer never corrupts payload
// bytes: a connection delivers a prefix of what the peer sent (resets
// truncate, slow conns delay) and a transport delivers whole requests
// zero, one, or two times. FuzzNetFaultConn holds the conn wrapper to
// that contract.
package netfault

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the sentinel every injected fault error wraps, so a
// client's retry discipline (and a test) can tell manufactured failures
// from real ones with errors.Is.
var ErrInjected = errors.New("netfault: injected fault")

// Spec configures one fault layer. Each rate is the per-operation
// probability of injecting that fault, drawn from the seeded stream.
type Spec struct {
	// Seed drives the fault generator; equal seeds and equal operation
	// sequences inject the same faults.
	Seed uint64
	// MaxFaults caps the total number of injected faults (0 = unlimited).
	// Convergence loops use it to guarantee a run eventually completes:
	// once the budget is spent the network behaves perfectly.
	MaxFaults int

	// Client-side rates (Transport).

	// DialError is the probability that a request fails before reaching
	// the server — a dial timeout or a reset during connect. The server
	// never sees the request.
	DialError float64
	// ResponseDrop is the probability that a fully processed exchange
	// loses its response: the server handled the request and sent its
	// acknowledgement, but the client sees a connection reset. The classic
	// lost-ack regime — an at-least-once client must retry, and the
	// server's dedupe must absorb the redelivery.
	ResponseDrop float64
	// DuplicateSend is the probability that a request is delivered twice
	// back to back — a retrying middlebox. The client sees the second
	// response; the first delivery is a manufactured duplicate.
	DuplicateSend float64
	// SendLatency is the probability of injecting latency before a send.
	SendLatency float64
	// MaxLatency bounds one injected latency pause (0 = 2ms).
	MaxLatency time.Duration

	// Server-side rates (Listener), decided once per accepted conn.

	// ConnReset is the probability that a connection is armed to reset:
	// after a seeded byte budget it fails both directions, as if the peer
	// vanished mid-exchange.
	ConnReset float64
	// ResetBudget bounds the bytes a reset-armed connection carries before
	// failing (0 = 4096). The budget is drawn per conn, so resets land
	// everywhere from mid-headers to mid-response.
	ResetBudget int
	// SlowConn is the probability that a connection is slow-loris: every
	// read and write moves at most SlowChunk bytes and pauses up to
	// SlowDelay first.
	SlowConn float64
	// SlowChunk bounds bytes per op on a slow conn (0 = 64).
	SlowChunk int
	// SlowDelay bounds the per-op pause on a slow conn (0 = 1ms).
	SlowDelay time.Duration
}

func (s Spec) withDefaults() Spec {
	if s.MaxLatency == 0 {
		s.MaxLatency = 2 * time.Millisecond
	}
	if s.ResetBudget == 0 {
		s.ResetBudget = 4096
	}
	if s.SlowChunk == 0 {
		s.SlowChunk = 64
	}
	if s.SlowDelay == 0 {
		s.SlowDelay = time.Millisecond
	}
	return s
}

// Stats is a point-in-time snapshot of one fault layer's telemetry. The
// convergence property uses it to account for every duplicate the layer
// manufactured.
type Stats struct {
	// Delivered counts HTTP exchanges the server fully processed —
	// including those whose response was then dropped or superseded by a
	// duplicate. Transport only.
	Delivered int64
	// DialErrors counts requests failed before delivery.
	DialErrors int64
	// ResponseDrops counts delivered exchanges whose response was dropped.
	ResponseDrops int64
	// DuplicateSends counts manufactured extra deliveries.
	DuplicateSends int64
	// Latencies counts injected latency pauses.
	Latencies int64
	// ConnResets and SlowConns count connections armed with each server-
	// side fault. Listener only.
	ConnResets int64
	SlowConns  int64
}

// injector is the seeded fault die, shared by a layer's operations. It
// mirrors errfs: a SplitMix64 stream plus a total budget.
type injector struct {
	mu       sync.Mutex
	rng      uint64
	budget   int // remaining faults; -1 = unlimited
	injected int
}

func newInjector(spec Spec) *injector {
	b := -1
	if spec.MaxFaults > 0 {
		b = spec.MaxFaults
	}
	return &injector{rng: spec.Seed, budget: b}
}

// next advances the SplitMix64 stream. Caller holds i.mu.
func (i *injector) next() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hit rolls the fault die for probability p, respecting the budget.
func (i *injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.budget == 0 {
		return false
	}
	if float64(i.next()>>11)/(1<<53) >= p {
		return false
	}
	if i.budget > 0 {
		i.budget--
	}
	i.injected++
	return true
}

// draw returns a seeded value in [0, n).
func (i *injector) draw(n int64) int64 {
	if n <= 0 {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return int64(i.next() % uint64(n))
}

// Injected reports how many faults the injector has placed.
func (i *injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected
}
