package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzNetFaultConn holds the conn wrapper to its framing contract: under
// any seed and fault intensity, the wrapper never panics and never
// silently corrupts framing — the bytes a reader receives are always a
// prefix of the bytes the writer sent. (The transport layer, not the
// conn, is what may duplicate whole requests.)
func FuzzNetFaultConn(f *testing.F) {
	f.Add(uint64(1), []byte("hello world"), 0.0, 0.0)
	f.Add(uint64(2), bytes.Repeat([]byte("abcdefgh"), 64), 1.0, 0.0)
	f.Add(uint64(3), bytes.Repeat([]byte{0x00, 0xff}, 300), 0.0, 1.0)
	f.Add(uint64(4), []byte("POST /v1/events HTTP/1.1\r\nHost: x\r\n\r\n{}"), 0.5, 0.5)
	f.Add(uint64(5), []byte{}, 1.0, 1.0)

	f.Fuzz(func(t *testing.T, seed uint64, payload []byte, reset float64, slow float64) {
		if len(payload) > 1<<13 {
			payload = payload[:1<<13]
		}
		server, client := net.Pipe()
		defer client.Close()
		fc := WrapConn(server, Spec{
			Seed:        seed,
			ConnReset:   clamp01(reset),
			ResetBudget: 1 + int(seed%512),
			SlowConn:    clamp01(slow),
			SlowChunk:   1 + int(seed%16),
			SlowDelay:   10 * time.Microsecond,
		})
		defer fc.Close()

		// Writer pushes the payload through the fault conn; reader drains
		// the raw end. Deadline on the raw side bounds the slow-loris path.
		client.SetDeadline(time.Now().Add(10 * time.Second))
		done := make(chan struct{})
		go func() {
			defer close(done)
			fc.Write(payload)
			fc.Close()
		}()
		got, _ := io.ReadAll(client)
		<-done

		if len(got) > len(payload) {
			t.Fatalf("conn delivered %d bytes, only %d sent", len(got), len(payload))
		}
		if !bytes.Equal(got, payload[:len(got)]) {
			t.Fatalf("delivered bytes are not a prefix of sent bytes")
		}
	})
}

func clamp01(p float64) float64 {
	if p < 0 || p != p {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
