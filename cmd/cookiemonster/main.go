// Command cookiemonster regenerates the paper's evaluation figures
// (Figs. 4–7 and the Appendix B latency study) and prints each panel as a
// table of the same rows/series the paper plots.
//
// Usage:
//
//	cookiemonster [-quick] [-seed N] [-parallel N] [-stream] [fig4|fig5|fig6|fig7|appb|scenarios|all]
//
// With -stream, every workload runs through the online measurement service
// (internal/stream): events are ingested as a day-ordered stream through a
// bounded queue and queries fire as their batches fill. Results are
// bit-identical to batch mode, so the figures reproduce exactly.
//
// The scenarios target runs the hostile-traffic catalog (internal/scenario)
// through the robustness harness; -scenario selects one catalog entry and
// -scenario-out writes the BENCH_scenarios.json artifact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// tabler is any figure result that renders to tables.
type tabler interface {
	Tables() []experiments.Table
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale experiments")
	seed := flag.Uint64("seed", 0, "seed offset for datasets and noise")
	parallel := flag.Int("parallel", 0,
		"report-generation workers per batch (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	streaming := flag.Bool("stream", false,
		"run workloads through the online measurement service (day-ordered ingestion, "+
			"day-clocked queries; results are identical to batch mode)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"make streaming runs crash-safe: persist a write-ahead log and snapshots "+
			"under this directory (implies -stream)")
	snapshotEvery := flag.Int("snapshot-every", 7,
		"snapshot cadence in days inside -checkpoint-dir (0 = WAL only)")
	snapshotMode := flag.String("snapshot-mode", "delta",
		"how the cadence persists state inside -checkpoint-dir: delta writes only "+
			"the lanes dirtied since the previous generation and compacts periodically; "+
			"full serializes everything every tick")
	groupCommit := flag.Int("group-commit-interval", 0,
		"batch WAL fsyncs inside -checkpoint-dir: fsync after this many appended "+
			"events instead of once per append (0 = every append)")
	resume := flag.Bool("resume", false,
		"recover interrupted runs from -checkpoint-dir's durable state and continue; "+
			"results are identical to an uninterrupted run")
	scenarioName := flag.String("scenario", "",
		"with the scenarios target: run a single named hostile-traffic scenario "+
			"from the catalog instead of all of them (see README for the list)")
	scenarioOut := flag.String("scenario-out", "",
		"with the scenarios target: also write the robustness report as a "+
			"BENCH_scenarios.json artifact at this path")
	flag.Parse()

	if *resume && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint-dir")
		os.Exit(2)
	}

	target := "all"
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Parallelism: *parallel,
		Streaming:     *streaming || *checkpointDir != "",
		CheckpointDir: *checkpointDir, SnapshotEveryDays: *snapshotEvery, Resume: *resume,
		SnapshotMode: *snapshotMode, GroupCommitEvents: *groupCommit,
	}

	harnesses := map[string]func(experiments.Options) (tabler, error){
		"fig4":     func(o experiments.Options) (tabler, error) { return experiments.Fig4(o) },
		"fig5":     func(o experiments.Options) (tabler, error) { return experiments.Fig5(o) },
		"fig6":     func(o experiments.Options) (tabler, error) { return experiments.Fig6(o) },
		"fig7":     func(o experiments.Options) (tabler, error) { return experiments.Fig7(o) },
		"appb":     func(o experiments.Options) (tabler, error) { return experiments.AppendixB(o) },
		"ablation": func(o experiments.Options) (tabler, error) { return experiments.Ablation(o) },
		"headline": func(o experiments.Options) (tabler, error) { return experiments.Headline(o) },
		"scenarios": func(o experiments.Options) (tabler, error) {
			return experiments.Scenarios(o, *scenarioName, *scenarioOut)
		},
	}
	// The scenarios target is opt-in: "all" keeps reproducing the paper's
	// figures, and the robustness gauntlet runs when asked for by name.
	order := []string{"fig4", "fig5", "fig6", "fig7", "appb", "ablation", "headline"}

	var selected []string
	if target == "all" {
		selected = order
	} else if _, ok := harnesses[target]; ok {
		selected = []string{target}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig4|fig5|fig6|fig7|appb|ablation|headline|scenarios|all)\n", target)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		res, err := harnesses[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range res.Tables() {
			fmt.Println(t.Render())
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
