// Command dashboard renders the Fig. 1 privacy-loss dashboard as text: it
// replays a small browsing trace on one device and prints, per querier site
// and epoch, the budget each site's attribution reports have consumed.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/attribution"
	"repro/internal/core"
	"repro/internal/events"
)

func main() {
	epsG := flag.Float64("epsilon", 1.0, "per-epoch budget capacity ε^G")
	width := flag.Int("width", 40, "bar width in characters")
	flag.Parse()

	db := events.NewDatabase()

	// A month of Ann's browsing: Nike ads on nytimes.com and bbc.com,
	// sportswear ads from a second advertiser, then purchases.
	type imp struct {
		day      int
		pub, adv events.Site
		campaign string
	}
	for i, im := range []imp{
		{2, "nytimes.com", "nike.com", "shoes"},
		{9, "bbc.com", "nike.com", "shoes"},
		{11, "nytimes.com", "adidas.com", "track"},
		{16, "facebook.com", "nike.com", "shoes"},
		{23, "bbc.com", "adidas.com", "track"},
	} {
		db.Record(events.EpochOfDay(im.day, 7), events.Event{
			ID: events.EventID(i + 1), Kind: events.KindImpression,
			Device: 1, Day: im.day, Publisher: im.pub,
			Advertiser: im.adv, Campaign: im.campaign,
		})
	}

	// Ann's device comes out of the same fleet registry the workload
	// engine uses; the events database is frozen before any report reads.
	db.Freeze()
	fleet := core.NewFleet(1, func(id events.DeviceID) *core.Device {
		return core.NewDevice(id, db, *epsG, core.CookieMonsterPolicy{})
	})
	dev := fleet.GetOrCreate(1)

	// Conversions trigger attribution reports, consuming budget.
	report := func(day int, adv events.Site, campaign string, value, cap float64) {
		first, last := events.EpochWindow(day, 30, 7)
		_, _, err := dev.GenerateReport(&core.Request{
			Querier:    adv,
			FirstEpoch: first, LastEpoch: last,
			Selector:          events.NewCampaignSelector(adv, campaign),
			Function:          attribution.Slots{Logic: attribution.LastTouch{}, MaxImpressions: 2, Value: value},
			Epsilon:           0.2,
			ReportSensitivity: value,
			QuerySensitivity:  cap,
			PNorm:             1,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	report(25, "nike.com", "shoes", 70, 100)
	report(27, "nike.com", "shoes", 40, 100)
	report(28, "adidas.com", "track", 55, 80)

	fmt.Printf("Privacy-loss dashboard (device 1, ε^G=%.2f per epoch)\n\n", *epsG)
	fmt.Print(core.RenderDashboard(dev.Ledger(), *width))
}
