// Command measured runs the measurement service as a network server and
// benchmarks it (DESIGN.md §13).
//
// Usage:
//
//	measured serve  -addr HOST:PORT (-trace FILE | -workload NAME | -population N -duration D) [scenario/durability flags]
//	measured bench  [-target URL] (-trace FILE | -workload NAME) [-senders N -rps R -batch B -warmup F -out BENCH_serve.json]
//	measured chaos  (-trace FILE | -workload NAME) [-senders N -batch B -apply-delay D -shed-delay D -out BENCH_chaos.json]
//	measured export -workload NAME [-out FILE]
//
// serve boots an HTTP/JSON front door over the streaming service: devices
// POST impression/conversion events to /v1/events, queriers register on
// /v1/queries and poll /v1/results. SIGTERM (and SIGINT) trigger a
// graceful drain: the bounded ingest queue empties through the service,
// the group-commit syncer flushes, and — when -checkpoint-dir is set — a
// final snapshot generation commits so -resume continues the run exactly
// where it stopped.
//
// bench drives a server with the load generator (internal/loadgen):
// N concurrent senders at a configurable aggregate request rate, with
// warm-up, reporting p50/p95/p99 ingest and query-poll latency plus
// sustained throughput into a BENCH_serve.json rows file. Without
// -target it boots an in-process server on a loopback port first.
//
// chaos measures the serving path under manufactured network trouble
// (DESIGN.md §14): it boots an in-process server per profile — clean,
// lossy, hostile, and a throttled server driven at 2x capacity with and
// without overload shedding — runs the retrying load generator through a
// fault-injecting transport (internal/netfault), and writes the measured
// rows (sustained RPS, accepted-request p99, shed rate, retry
// amplification) to a BENCH_chaos.json file.
//
// export writes a cataloged figure workload (internal/figures) as a
// trace file — the workload interchange format serve and bench consume.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/figures"
	"repro/internal/loadgen"
	"repro/internal/netfault"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "measured: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "measured: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  measured serve  -addr HOST:PORT (-trace FILE | -workload NAME | -population N -duration D) [flags]
  measured bench  [-target URL] (-trace FILE | -workload NAME) [flags]
  measured chaos  (-trace FILE | -workload NAME) [flags]
  measured export -workload NAME [-out FILE]`)
}

// scenarioFlags registers the workload-scenario and durability flags every
// server (in-process or standalone) shares, mirroring cmd/cookiemonster.
type scenarioFlags struct {
	system        *string
	epsilonG      *float64
	seed          *uint64
	parallel      *int
	epochDays     *int
	windowDays    *int
	checkpointDir *string
	snapshotEvery *int
	snapshotMode  *string
	groupCommit   *int
	resume        *bool
}

func registerScenarioFlags(fs *flag.FlagSet) *scenarioFlags {
	return &scenarioFlags{
		system:   fs.String("system", "cookie-monster", "budgeting system: cookie-monster, ara-like or ipa-like"),
		epsilonG: fs.Float64("epsilon-g", 2, "per-epoch budget capacity"),
		seed:     fs.Uint64("seed", 7, "aggregation noise seed"),
		parallel: fs.Int("parallel", 0,
			"report-generation workers per batch (0 = GOMAXPROCS, 1 = sequential; results are identical)"),
		epochDays:  fs.Int("epoch-days", 0, "on-device epoch length in days (0 = default 7)"),
		windowDays: fs.Int("window-days", 0, "attribution window in days (0 = default 30)"),
		checkpointDir: fs.String("checkpoint-dir", "",
			"make the run crash-safe: persist a write-ahead log and snapshots under this directory"),
		snapshotEvery: fs.Int("snapshot-every", 7,
			"snapshot cadence in days inside -checkpoint-dir (0 = WAL only)"),
		snapshotMode: fs.String("snapshot-mode", "delta",
			"cadence snapshot representation inside -checkpoint-dir: delta or full"),
		groupCommit: fs.Int("group-commit-interval", 0,
			"batch WAL fsyncs inside -checkpoint-dir: fsync after this many appended events (0 = every append)"),
		resume: fs.Bool("resume", false,
			"recover the run from -checkpoint-dir's durable state and continue serving"),
	}
}

func (sf *scenarioFlags) config() (workload.Config, error) {
	cfg := workload.Config{
		EpsilonG:          *sf.epsilonG,
		Seed:              *sf.seed,
		Parallelism:       *sf.parallel,
		EpochDays:         *sf.epochDays,
		WindowDays:        *sf.windowDays,
		CheckpointDir:     *sf.checkpointDir,
		SnapshotEveryDays: *sf.snapshotEvery,
		SnapshotMode:      *sf.snapshotMode,
		GroupCommitEvents: *sf.groupCommit,
		Resume:            *sf.resume,
	}
	if cfg.CheckpointDir == "" {
		cfg.SnapshotEveryDays = 0
		cfg.GroupCommitEvents = 0
	}
	switch *sf.system {
	case "cookie-monster":
		cfg.System = workload.CookieMonster
	case "ara-like":
		cfg.System = workload.ARALike
	case "ipa-like":
		cfg.System = workload.IPALike
	default:
		return cfg, fmt.Errorf("unknown -system %q (want cookie-monster, ara-like or ipa-like)", *sf.system)
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return cfg, fmt.Errorf("-resume requires -checkpoint-dir")
	}
	return cfg, nil
}

// loadMeta resolves the served trace identity from -trace / -workload /
// explicit population+duration flags. A trace or cataloged workload also
// pre-registers its queriers; the bare form leaves registration to the
// API. The dataset return is non-nil only when events are available
// locally (bench needs them; serve only needs the metadata).
func loadMeta(tracePath, workloadName, name string, population, duration int) (dataset.Meta, *dataset.Dataset, error) {
	switch {
	case tracePath != "" && workloadName != "":
		return dataset.Meta{}, nil, fmt.Errorf("-trace and -workload are mutually exclusive")
	case tracePath != "":
		ds, err := dataset.OpenTrace(tracePath)
		if err != nil {
			return dataset.Meta{}, nil, err
		}
		return ds.Meta(), ds, nil
	case workloadName != "":
		w, err := figures.ByName(workloadName)
		if err != nil {
			return dataset.Meta{}, nil, err
		}
		cfg, err := w.Config()
		if err != nil {
			return dataset.Meta{}, nil, err
		}
		return cfg.Dataset.Meta(), cfg.Dataset, nil
	case population > 0 && duration > 0:
		if name == "" {
			name = "served"
		}
		return dataset.Meta{Name: name, PopulationDevices: population, DurationDays: duration}, nil, nil
	default:
		return dataset.Meta{}, nil, fmt.Errorf("need -trace, -workload, or -population and -duration")
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("measured serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	tracePath := fs.String("trace", "", "trace file whose header fixes the trace identity and queriers")
	workloadName := fs.String("workload", "", "cataloged figure workload to take the trace identity from")
	name := fs.String("name", "", "trace name when -population/-duration are given")
	population := fs.Int("population", 0, "device population (with -duration, instead of -trace/-workload)")
	duration := fs.Int("duration", 0, "trace duration in days (with -population)")
	ingestBuffer := fs.Int("ingest-buffer", 0, "bounded admission queue size (0 = 4096); overflow returns 429")
	shedDelay := fs.Duration("shed-delay", 0,
		"overload shedding threshold: 429 + Retry-After when the admission queue's head has waited longer (0 = disabled)")
	readTimeout := fs.Duration("read-timeout", 5*time.Second,
		"HTTP read-header timeout, the slow-loris guard (0 = none)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute,
		"HTTP keep-alive idle timeout (0 = none)")
	signalFinal := fs.Bool("signal-final", false,
		"on SIGTERM/SIGINT, close out the trace (flush the in-progress day and finish the run) "+
			"instead of suspending into a resumable checkpoint")
	sf := registerScenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario, err := sf.config()
	if err != nil {
		return err
	}
	meta, _, err := loadMeta(*tracePath, *workloadName, *name, *population, *duration)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(serve.Config{
		Scenario: scenario, Meta: meta, IngestBuffer: *ingestBuffer, ShedDelay: *shedDelay,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// No WriteTimeout: /v1/shutdown legitimately blocks for the drain, and
	// ingest acks wait on applied durability. Slow-loris protection is the
	// read-header timeout; idle keep-alive conns are reaped separately.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readTimeout,
		IdleTimeout:       *idleTimeout,
	}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	fmt.Printf("measured: serving %s (%d devices, %d days, %d queriers) on http://%s\n",
		meta.Name, meta.PopulationDevices, meta.DurationDays, len(meta.Advertisers), ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		mode := "suspending (resumable)"
		if *signalFinal {
			mode = "closing out the trace"
		}
		fmt.Printf("measured: %v: draining ingest queue, %s\n", sig, mode)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		run, err := srv.Shutdown(ctx, *signalFinal)
		_ = hs.Shutdown(ctx)
		if err != nil {
			return fmt.Errorf("drain failed: %w", err)
		}
		printSummary(run, srv.StatsSnapshot())
		return nil
	case <-srv.Done():
		// The run finished through the API (/v1/shutdown or end of trace).
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		run, err := srv.Run()
		if err != nil {
			return fmt.Errorf("run failed: %w", err)
		}
		printSummary(run, srv.StatsSnapshot())
		return nil
	case err := <-httpDone:
		return fmt.Errorf("http server: %w", err)
	}
}

func printSummary(run *workload.Run, st serve.Stats) {
	if run == nil {
		fmt.Printf("measured: stopped before any run started\n")
		return
	}
	fmt.Printf("measured: run complete: %d events ingested, %d late-dropped, %d results released, "+
		"%d duplicates rejected, %d requests backpressured\n",
		run.EventsIngested, run.EventsDropped, len(run.Results),
		st.DuplicatesRejected, st.Backpressured)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("measured bench", flag.ExitOnError)
	target := fs.String("target", "", "base URL of a running server (empty = boot one in-process)")
	tracePath := fs.String("trace", "", "trace file to send")
	workloadName := fs.String("workload", "", "cataloged figure workload to send")
	senders := fs.Int("senders", 4, "concurrent sender goroutines")
	rps := fs.Float64("rps", 0, "aggregate ingest request rate cap (0 = unpaced)")
	batch := fs.Int("batch", 256, "events per ingest request")
	warmup := fs.Float64("warmup", 0.1, "fraction of leading latency samples discarded as warm-up")
	pollMs := fs.Int("poll-interval-ms", 50, "result poller cadence in milliseconds")
	out := fs.String("out", "BENCH_serve.json", "benchmark report path (empty = don't write)")
	finalize := fs.Bool("finalize", true, "POST /v1/shutdown (final) after the load completes")
	ingestBuffer := fs.Int("ingest-buffer", 0, "in-process server's admission queue size (0 = 4096)")
	shedDelay := fs.Duration("shed-delay", 0,
		"in-process server's overload shedding threshold (0 = disabled)")
	sf := registerScenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ds, err := loadMeta(*tracePath, *workloadName, "", 0, 0)
	if err != nil {
		return err
	}
	if ds == nil || len(ds.Events) == 0 {
		return fmt.Errorf("bench needs a trace with events (-trace or -workload)")
	}

	baseURL := *target
	if baseURL == "" {
		scenario, err := sf.config()
		if err != nil {
			return err
		}
		meta := ds.Meta()
		meta.Advertisers = nil // register over the API, like a real client
		srv, err := serve.NewServer(serve.Config{
			Scenario: scenario, Meta: meta, IngestBuffer: *ingestBuffer, ShedDelay: *shedDelay,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = hs.Shutdown(ctx)
		}()
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("measured bench: in-process server on %s\n", baseURL)
	}

	ctx := context.Background()
	report, err := loadgen.Run(ctx, loadgen.Config{
		Target:         baseURL,
		Dataset:        ds,
		Senders:        *senders,
		RPS:            *rps,
		BatchSize:      *batch,
		WarmupFraction: *warmup,
		PollInterval:   time.Duration(*pollMs) * time.Millisecond,
		Seed:           *sf.seed,
	})
	if err != nil {
		return err
	}
	if *finalize {
		if err := postShutdown(ctx, baseURL); err != nil {
			return err
		}
	}
	fmt.Printf("measured bench: %s: %d requests (%d events) in %.2fs — %.1f req/s, %.0f events/s\n",
		report.Workload, report.Requests, report.EventsAccepted,
		report.DurationSeconds, report.SustainedRPS, report.SustainedEventsPerSec)
	fmt.Printf("  ingest latency ms: p50 %.3f  p95 %.3f  p99 %.3f   (retries: %d backpressure, %d unavailable, %d transport; amplification %.3fx, %d give-ups)\n",
		report.IngestP50Millis, report.IngestP95Millis, report.IngestP99Millis,
		report.Retries429, report.Retries503, report.RetriesNet,
		report.RetryAmplification, report.GiveUps)
	fmt.Printf("  query poll ms:     p50 %.3f  p95 %.3f  p99 %.3f   (%d polls, %d results)\n",
		report.QueryP50Millis, report.QueryP95Millis, report.QueryP99Millis,
		report.QueryPolls, report.ResultsFetched)
	if *out != "" {
		if err := loadgen.WriteBenchFile(*out, report); err != nil {
			return err
		}
		fmt.Printf("measured bench: wrote %s\n", *out)
	}
	return nil
}

// chaosProfile is one measured network regime: a client-side fault spec,
// an optional server-side listener spec, an optional per-event apply
// throttle fixing the service's capacity, a shedding threshold, and the
// pacing as a multiple of that capacity.
type chaosProfile struct {
	name      string
	client    *netfault.Spec
	listener  *netfault.Spec
	apply     time.Duration
	shedDelay time.Duration
	overload  float64
}

// chaosRow is one BENCH_chaos.json row: the load generator's report plus
// the server's admission telemetry and the fault layer's own books.
type chaosRow struct {
	Profile string `json:"profile"`
	*loadgen.Report
	Server    serve.Stats    `json:"server"`
	Transport netfault.Stats `json:"transport"`
}

func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("measured chaos", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file to send")
	workloadName := fs.String("workload", "", "cataloged figure workload to send")
	senders := fs.Int("senders", 6, "concurrent sender goroutines")
	batch := fs.Int("batch", 128, "events per ingest request")
	applyDelay := fs.Duration("apply-delay", 400*time.Microsecond,
		"per-event apply throttle for the overload profiles; fixes the server's capacity")
	shedDelay := fs.Duration("shed-delay", 25*time.Millisecond,
		"shedding threshold for the overload-shed profile")
	out := fs.String("out", "BENCH_chaos.json", "chaos report path (empty = don't write)")
	sf := registerScenarioFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, ds, err := loadMeta(*tracePath, *workloadName, "", 0, 0)
	if err != nil {
		return err
	}
	if ds == nil || len(ds.Events) == 0 {
		return fmt.Errorf("chaos needs a trace with events (-trace or -workload)")
	}
	scenario, err := sf.config()
	if err != nil {
		return err
	}

	seed := *sf.seed
	lossy := netfault.Spec{
		Seed: seed*0x9e3779b97f4a7c15 + 1, DialError: 0.02, ResponseDrop: 0.03,
		DuplicateSend: 0.02, SendLatency: 0.2, MaxLatency: time.Millisecond,
	}
	hostileClient := netfault.Spec{
		Seed: seed*0x9e3779b97f4a7c15 + 2, DialError: 0.05, ResponseDrop: 0.06,
		DuplicateSend: 0.05, SendLatency: 0.3, MaxLatency: 2 * time.Millisecond,
	}
	hostileWire := netfault.Spec{
		Seed: seed*0x517cc1b727220a95 + 3, ConnReset: 0.08, SlowConn: 0.03,
	}
	profiles := []chaosProfile{
		{name: "clean"},
		{name: "lossy", client: &lossy},
		{name: "hostile", client: &hostileClient, listener: &hostileWire},
		{name: "overload-noshed", apply: *applyDelay, overload: 2},
		{name: "overload-shed", apply: *applyDelay, overload: 2, shedDelay: *shedDelay},
	}

	rows := make([]*chaosRow, 0, len(profiles))
	for _, p := range profiles {
		row, err := runChaosProfile(ds, scenario, p, *senders, *batch, seed)
		if err != nil {
			return fmt.Errorf("profile %s: %w", p.name, err)
		}
		fmt.Printf("measured chaos: %-16s %7.1f req/s  accepted p99 %8.3fms  shed %5d  amplification %.3fx  dups %d\n",
			row.Profile, row.SustainedRPS, row.AcceptedP99Millis,
			row.Server.Shed, row.RetryAmplification, row.Duplicates)
		// The bench is self-checking: a give-up means the retry discipline
		// wedged, and a shed response without Retry-After breaks the
		// overload contract. Either fails the run, not just the numbers.
		if row.GiveUps != 0 {
			return fmt.Errorf("profile %s: %d give-ups (by sender: %v)", p.name, row.GiveUps, row.GiveUpsBySender)
		}
		if row.RetryAfterMissing != 0 {
			return fmt.Errorf("profile %s: %d pushback responses lacked Retry-After", p.name, row.RetryAfterMissing)
		}
		rows = append(rows, row)
	}
	if *out != "" {
		data, err := json.MarshalIndent(struct {
			Rows []*chaosRow `json:"rows"`
		}{Rows: rows}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("measured chaos: wrote %s\n", *out)
	}
	return nil
}

// runChaosProfile boots a fresh in-process server for one profile, runs
// the load generator through it, closes the run out directly (no HTTP, so
// shutdown never tangles with the fault layer), and collects the row.
func runChaosProfile(ds *dataset.Dataset, scenario workload.Config, p chaosProfile, senders, batch int, seed uint64) (*chaosRow, error) {
	if p.apply > 0 {
		delay := p.apply
		scenario.FaultHook = func(pt stream.FaultPoint) error {
			if pt == stream.PointEventIngested {
				time.Sleep(delay)
			}
			return nil
		}
	}
	meta := ds.Meta()
	meta.Advertisers = nil // loadgen registers them
	srv, err := serve.NewServer(serve.Config{Scenario: scenario, Meta: meta, ShedDelay: p.shedDelay})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveLn := net.Listener(ln)
	if p.listener != nil {
		serveLn = netfault.WrapListener(ln, *p.listener)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = hs.Serve(serveLn) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	var client *http.Client
	var tr *netfault.Transport
	if p.client != nil {
		tr = netfault.NewTransport(nil, *p.client)
		client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	// Overload pacing: the apply throttle fixes capacity in events/s, and
	// the pacer drives the aggregate request rate at a multiple of it.
	rps := 0.0
	if p.overload > 0 && p.apply > 0 {
		rps = p.overload * float64(time.Second) / float64(p.apply) / float64(batch)
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         "http://" + ln.Addr().String(),
		Dataset:        ds,
		Senders:        senders,
		RPS:            rps,
		BatchSize:      batch,
		WarmupFraction: 0.1,
		Seed:           seed,
		Client:         client,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := srv.Shutdown(ctx, true); err != nil {
		return nil, fmt.Errorf("closing out the run: %w", err)
	}
	row := &chaosRow{Profile: p.name, Report: rep, Server: srv.StatsSnapshot()}
	if tr != nil {
		row.Transport = tr.Stats()
	}
	return row, nil
}

func postShutdown(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/shutdown", nil)
	if err != nil {
		return err
	}
	resp, err := (&http.Client{Timeout: 2 * time.Minute}).Do(req)
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shutdown: status %d", resp.StatusCode)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("measured export", flag.ExitOnError)
	workloadName := fs.String("workload", "", "cataloged figure workload to export")
	out := fs.String("out", "", "trace file path (default NAME.trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloadName == "" {
		return fmt.Errorf("export needs -workload (one of the figures catalog names)")
	}
	w, err := figures.ByName(*workloadName)
	if err != nil {
		return err
	}
	cfg, err := w.Config()
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *workloadName + ".trace"
	}
	if err := dataset.WriteTraceFile(path, cfg.Dataset.Stream()); err != nil {
		return err
	}
	fmt.Printf("measured export: wrote %s (%d events, %d devices, %d days, %d queriers)\n",
		path, len(cfg.Dataset.Events), cfg.Dataset.PopulationDevices,
		cfg.Dataset.DurationDays, len(cfg.Dataset.Advertisers))
	return nil
}
